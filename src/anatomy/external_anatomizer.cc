#include "anatomy/external_anatomizer.h"

#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <set>

#include "anatomy/eligibility.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/page_file.h"
#include "storage/recovery.h"

namespace anatomy {

namespace {

// On-disk record layouts (int32 fields):
//   tuple record  : [row_id, sensitive, qi_1 .. qi_d]        (d + 2 fields)
//   group record  : [group_id, row_id, sensitive, qi_1..qi_d] (d + 3 fields)
//   QIT record    : [qi_1 .. qi_d, group_id]                  (d + 1 fields)
//   ST record     : [group_id, sensitive, count]              (3 fields)

/// Streaming cursor over one bucket file that also knows how many records
/// remain (bucket size for the largest-l selection).
struct BucketCursor {
  Code value = 0;
  std::unique_ptr<RecordFile> file;
  std::unique_ptr<RecordReader> reader;

  uint64_t remaining() const { return reader->remaining(); }
};

/// The full pipeline (Stages 0-3). Runs inside the caller's PipelineGuard:
/// any early return leaves pages behind that the guard reclaims. With
/// `publish` set, the QIT/ST files are committed via a manifest and left on
/// disk; otherwise they are freed (the Figures 8-9 benchmark contract).
StatusOr<ExternalAnatomizeResult> RunPipeline(const AnatomizerOptions& options,
                                              const Microdata& microdata,
                                              Disk* disk, BufferPool* pool,
                                              bool publish) {
  const size_t l = static_cast<size_t>(options.l);
  const size_t d = microdata.d();
  const size_t tuple_fields = d + 2;

  // ---- Stage 0 (uncounted): materialize T on disk, as in the paper where
  // the microdata pre-exists as a table. ----
  obs::ScopedSpan stage0_span("external_anatomize.stage0_load",
                              "external_anatomize");
  RecordFile input(disk, tuple_fields);
  {
    RecordWriter writer(pool, &input);
    std::vector<int32_t> rec(tuple_fields);
    for (RowId r = 0; r < microdata.n(); ++r) {
      rec[0] = static_cast<int32_t>(r);
      rec[1] = microdata.sensitive_value(r);
      for (size_t i = 0; i < d; ++i) rec[2 + i] = microdata.qi_value(r, i);
      ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
    }
  }
  ANATOMY_RETURN_IF_ERROR(pool->FlushAll());
  disk->ResetStats();
  stage0_span.End();

  obs::ScopedSpan stage1_span("external_anatomize.stage1_partition",
                              "external_anatomize");
  // ---- Stage 1: hash-partition by sensitive value (Line 2 of Figure 3).
  // Fan-out limited to capacity - 2 buffer pages (one input cursor + slack);
  // overflowing partitions are refined by a second pass. ----
  const Code domain = microdata.sensitive_attribute().domain_size;
  const size_t fanout =
      std::min<size_t>(static_cast<size_t>(domain), pool->capacity() - 2);

  std::vector<std::unique_ptr<RecordFile>> partitions;
  std::vector<std::unique_ptr<RecordWriter>> partition_writers;
  std::vector<std::set<Code>> partition_values(fanout);
  for (size_t p = 0; p < fanout; ++p) {
    partitions.push_back(std::make_unique<RecordFile>(disk, tuple_fields));
    partition_writers.push_back(
        std::make_unique<RecordWriter>(pool, partitions[p].get()));
  }
  {
    RecordReader reader(pool, &input);
    std::vector<int32_t> rec(tuple_fields);
    for (;;) {
      ANATOMY_ASSIGN_OR_RETURN(bool more, reader.Next(rec));
      if (!more) break;
      const Code value = rec[1];
      const size_t p = static_cast<size_t>(value) % fanout;
      partition_values[p].insert(value);
      ANATOMY_RETURN_IF_ERROR(partition_writers[p]->Append(rec));
    }
  }
  ANATOMY_RETURN_IF_ERROR(pool->FlushAll());
  ANATOMY_RETURN_IF_ERROR(input.FreeAll(pool));

  // Refine partitions holding several sensitive values into per-value
  // buckets; single-value partitions are adopted as buckets directly.
  std::map<Code, BucketCursor> buckets;
  for (size_t p = 0; p < fanout; ++p) {
    if (partition_values[p].empty()) continue;
    if (partition_values[p].size() == 1) {
      BucketCursor cursor;
      cursor.value = *partition_values[p].begin();
      cursor.file = std::move(partitions[p]);
      buckets[cursor.value] = std::move(cursor);
      continue;
    }
    std::map<Code, std::unique_ptr<RecordWriter>> refined_writers;
    std::map<Code, std::unique_ptr<RecordFile>> refined_files;
    for (Code v : partition_values[p]) {
      refined_files[v] = std::make_unique<RecordFile>(disk, tuple_fields);
      refined_writers[v] =
          std::make_unique<RecordWriter>(pool, refined_files[v].get());
    }
    RecordReader reader(pool, partitions[p].get());
    std::vector<int32_t> rec(tuple_fields);
    for (;;) {
      ANATOMY_ASSIGN_OR_RETURN(bool more, reader.Next(rec));
      if (!more) break;
      ANATOMY_RETURN_IF_ERROR(refined_writers[rec[1]]->Append(rec));
    }
    ANATOMY_RETURN_IF_ERROR(pool->FlushAll());
    ANATOMY_RETURN_IF_ERROR(partitions[p]->FreeAll(pool));
    for (auto& [v, file] : refined_files) {
      BucketCursor cursor;
      cursor.value = v;
      cursor.file = std::move(file);
      buckets[v] = std::move(cursor);
    }
  }
  for (auto& [v, cursor] : buckets) {
    cursor.reader = std::make_unique<RecordReader>(pool, cursor.file.get());
  }
  stage1_span.End();

  obs::ScopedSpan stage2_span("external_anatomize.stage2_group_draw",
                              "external_anatomize");
  // ---- Stage 2: group-creation (Lines 3-8). Bucket sizes are O(lambda)
  // in-memory counters; tuples stream through the pool. ----
  ExternalAnatomizeResult result;
  const size_t group_fields = d + 3;
  RecordFile group_file(disk, group_fields);
  RecordWriter group_writer(pool, &group_file);

  std::vector<BucketCursor*> cursor_list;
  cursor_list.reserve(buckets.size());
  for (auto& [v, cursor] : buckets) cursor_list.push_back(&cursor);

  // Lazy max-heap of (remaining, index) with stale-entry revalidation.
  std::priority_queue<std::pair<uint64_t, size_t>> heap;
  size_t non_empty = 0;
  for (size_t i = 0; i < cursor_list.size(); ++i) {
    if (cursor_list[i]->remaining() > 0) {
      heap.push({cursor_list[i]->remaining(), i});
      ++non_empty;
    }
  }

  std::vector<int32_t> rec(tuple_fields);
  std::vector<int32_t> group_rec(group_fields);
  int32_t gcnt = 0;
  std::vector<size_t> drawn;
  while (non_empty >= l) {
    drawn.clear();
    while (drawn.size() < l) {
      if (heap.empty()) {
        return Status::Internal(
            "group-creation heap exhausted with non_empty >= l; bucket size "
            "accounting bug");
      }
      auto [size, idx] = heap.top();
      heap.pop();
      if (size == cursor_list[idx]->remaining() && size > 0) {
        drawn.push_back(idx);
      } else if (cursor_list[idx]->remaining() > 0) {
        heap.push({cursor_list[idx]->remaining(), idx});
      }
    }
    std::vector<RowId> group_rows;
    group_rows.reserve(l);
    for (size_t idx : drawn) {
      BucketCursor* cursor = cursor_list[idx];
      ANATOMY_ASSIGN_OR_RETURN(bool more, cursor->reader->Next(rec));
      if (!more) {
        return Status::Internal(
            "bucket cursor exhausted before its remaining() count; reader "
            "bookkeeping bug");
      }
      group_rec[0] = gcnt;
      std::copy(rec.begin(), rec.end(), group_rec.begin() + 1);
      ANATOMY_RETURN_IF_ERROR(group_writer.Append(group_rec));
      group_rows.push_back(static_cast<RowId>(rec[0]));
      if (cursor->remaining() == 0) {
        --non_empty;
      } else {
        heap.push({cursor->remaining(), idx});
      }
    }
    result.partition.groups.push_back(std::move(group_rows));
    ++gcnt;
  }
  if (result.partition.groups.empty()) {
    return Status::FailedPrecondition(
        "cardinality below l: no QI-group could be formed");
  }

  // Residue tuples (at most l-1, Property 1) are read into memory.
  struct Residue {
    RowId row;
    Code value;
    std::vector<Code> qi;
    bool placed = false;
  };
  std::vector<Residue> residues;
  for (BucketCursor* cursor : cursor_list) {
    while (cursor->remaining() > 0) {
      ANATOMY_ASSIGN_OR_RETURN(bool more, cursor->reader->Next(rec));
      if (!more) {
        return Status::Internal(
            "residue cursor exhausted before its remaining() count; reader "
            "bookkeeping bug");
      }
      Residue res;
      res.row = static_cast<RowId>(rec[0]);
      res.value = rec[1];
      res.qi.assign(rec.begin() + 2, rec.end());
      residues.push_back(std::move(res));
    }
    ANATOMY_RETURN_IF_ERROR(cursor->file->FreeAll(pool));
  }
  if (residues.size() >= l) {
    return Status::Internal("more than l-1 residue tuples; eligibility bug");
  }
  stage2_span.End();

  obs::ScopedSpan stage3_span("external_anatomize.stage3_residue_publish",
                              "external_anatomize");
  // ---- Stage 3: residue-assignment fused with QIT/ST publication
  // (Lines 9-18): one scan of the group file. A residue joins the first
  // scanned group lacking its sensitive value (Property 2 guarantees one
  // exists; "a random QI-group in S'" permits any choice). ----
  RecordFile qit_file(disk, d + 1);
  RecordFile st_file(disk, 3);
  RecordWriter qit_writer(pool, &qit_file);
  RecordWriter st_writer(pool, &st_file);

  RecordReader group_reader(pool, &group_file);
  std::vector<int32_t> qit_rec(d + 1);
  std::vector<int32_t> st_rec(3);

  int32_t current_group = -1;
  std::vector<Code> group_values;  // sensitive values of the current group
  std::vector<std::pair<Code, uint32_t>> st_records;

  auto flush_group = [&]() -> Status {
    if (current_group < 0) return Status::OK();
    // Residue placement for the group just finished.
    for (Residue& res : residues) {
      if (res.placed) continue;
      if (std::find(group_values.begin(), group_values.end(), res.value) !=
          group_values.end()) {
        continue;
      }
      res.placed = true;
      result.partition.groups[current_group].push_back(res.row);
      group_values.push_back(res.value);
      for (size_t i = 0; i < d; ++i) qit_rec[i] = res.qi[i];
      qit_rec[d] = current_group;
      ANATOMY_RETURN_IF_ERROR(qit_writer.Append(qit_rec));
    }
    // Emit ST records (each value occurs once per group — Property 3; the
    // histogram form handles general partitions).
    std::sort(group_values.begin(), group_values.end());
    st_records.clear();
    for (size_t i = 0; i < group_values.size();) {
      size_t j = i;
      while (j < group_values.size() && group_values[j] == group_values[i]) ++j;
      st_records.emplace_back(group_values[i], static_cast<uint32_t>(j - i));
      i = j;
    }
    for (const auto& [value, count] : st_records) {
      st_rec[0] = current_group;
      st_rec[1] = value;
      st_rec[2] = static_cast<int32_t>(count);
      ANATOMY_RETURN_IF_ERROR(st_writer.Append(st_rec));
    }
    return Status::OK();
  };

  for (;;) {
    ANATOMY_ASSIGN_OR_RETURN(bool more, group_reader.Next(group_rec));
    if (!more) break;
    if (group_rec[0] != current_group) {
      ANATOMY_RETURN_IF_ERROR(flush_group());
      current_group = group_rec[0];
      group_values.clear();
    }
    group_values.push_back(group_rec[2]);
    for (size_t i = 0; i < d; ++i) {
      qit_rec[i] = group_rec[3 + i];
    }
    qit_rec[d] = current_group;
    ANATOMY_RETURN_IF_ERROR(qit_writer.Append(qit_rec));
  }
  ANATOMY_RETURN_IF_ERROR(flush_group());
  for (const Residue& res : residues) {
    if (!res.placed) {
      return Status::Internal("unplaced residue tuple; Property 2 violated");
    }
  }
  ANATOMY_RETURN_IF_ERROR(pool->FlushAll());
  ANATOMY_RETURN_IF_ERROR(group_file.FreeAll(pool));

  result.io = disk->stats();
  result.qit_pages = qit_file.num_pages();
  result.st_pages = st_file.num_pages();
  stage3_span.End();

  // Publish the measured (counted, post-stage-0) I/O to the registry so
  // benches can reproduce the paper's I/O numbers from registry reads alone.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("external_anatomize.runs")->Increment();
  registry.GetCounter("external_anatomize.io.reads")
      ->Increment(result.io.reads);
  registry.GetCounter("external_anatomize.io.writes")
      ->Increment(result.io.writes);

  if (publish) {
    // Crash-consistent commit: data pages are on disk (FlushAll above), so
    // write the manifest chain root-last and audit the result. A failure
    // anywhere here propagates and the caller's guard reclaims everything —
    // the publication is then cleanly absent.
    ANATOMY_ASSIGN_OR_RETURN(
        result.manifest,
        CommitPublication(disk, qit_file, st_file, options.l,
                          pool->retry_policy()));
    ANATOMY_RETURN_IF_ERROR(
        VerifyPublication(disk, result.manifest, pool->retry_policy()));
    result.commit_io = disk->stats() - result.io;
    return result;
  }

  // The published files themselves are left on disk only conceptually; free
  // them so repeated benchmark runs do not grow the simulated disk.
  ANATOMY_RETURN_IF_ERROR(qit_file.FreeAll(pool));
  ANATOMY_RETURN_IF_ERROR(st_file.FreeAll(pool));
  return result;
}

StatusOr<ExternalAnatomizeResult> GuardedRun(const AnatomizerOptions& options,
                                             const Microdata& microdata,
                                             Disk* disk, BufferPool* pool,
                                             bool publish) {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  ANATOMY_RETURN_IF_ERROR(CheckEligibility(microdata, options.l));

  PipelineGuard guard(disk, pool);
  auto result = RunPipeline(options, microdata, disk, pool, publish);
  if (!result.ok()) {
    guard.Abort();
    return result.status();
  }
  if (pool->pinned_frames() != 0) {
    guard.Abort();
    return Status::Internal("pipeline finished with " +
                            std::to_string(pool->pinned_frames()) +
                            " frames still pinned");
  }
  return result;
}

}  // namespace

ExternalAnatomizer::ExternalAnatomizer(const AnatomizerOptions& options)
    : options_(options) {}

StatusOr<ExternalAnatomizeResult> ExternalAnatomizer::Run(
    const Microdata& microdata, Disk* disk, BufferPool* pool) const {
  return GuardedRun(options_, microdata, disk, pool, /*publish=*/false);
}

StatusOr<ExternalAnatomizeResult> ExternalAnatomizer::RunPublished(
    const Microdata& microdata, Disk* disk, BufferPool* pool) const {
  return GuardedRun(options_, microdata, disk, pool, /*publish=*/true);
}

}  // namespace anatomy
