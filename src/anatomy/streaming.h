// Streaming anatomization: groups are emitted while tuples arrive.
//
// The paper's Section 7 points at dynamic settings as future work. This
// extension maintains Anatomize's bucket structure incrementally: tuples are
// added one at a time, and whenever the buffer holds enough diversity
// (at least l non-empty buckets and at least `emit_threshold` buffered
// tuples) a group is formed from the l largest buckets, exactly like one
// iteration of Figure 3's group-creation step. Every emitted group therefore
// has l tuples with pairwise-distinct sensitive values — l-diverse by
// construction, before the stream ends.
//
// Finish() resolves the tail: the remaining buffered tuples are anatomized
// in one shot when they are still l-eligible, and the final <= l-1 residues
// are placed into earlier groups that lack their sensitive value. Orderings
// that strand unplaceable tuples are reported as Status errors, never as a
// silently weaker publication.

#ifndef ANATOMY_ANATOMY_STREAMING_H_
#define ANATOMY_ANATOMY_STREAMING_H_

#include <memory>
#include <vector>

#include "anatomy/partition.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "table/schema.h"

namespace anatomy {

struct StreamingAnatomizerOptions {
  int l = 10;
  uint64_t seed = 1;
  /// Minimum buffered tuples before a group may be emitted. Larger values
  /// buy the largest-bucket heuristic more slack (fewer stranded tuples at
  /// Finish) at the price of latency. Must be >= l; defaults to 4 * l when 0.
  size_t emit_threshold = 0;
};

class StreamingAnatomizer {
 public:
  /// `sensitive_domain` bounds the sensitive codes that may be Added.
  StreamingAnatomizer(const StreamingAnatomizerOptions& options,
                      Code sensitive_domain);

  /// Feeds one tuple; emits zero or more complete groups internally.
  /// Returns InvalidArgument for out-of-domain codes.
  Status Add(RowId row, Code sensitive_value);

  /// Groups fully formed so far (each of exactly l tuples with distinct
  /// sensitive values). Indices are stable; more groups only get appended.
  size_t emitted_groups() const { return groups_.size(); }

  /// Tuples still buffered (not yet part of any group).
  size_t buffered() const { return buffered_; }

  /// Durably checkpoints the window of groups emitted since the last
  /// successful flush: writes them as [group_id, row_id, sensitive] records
  /// into a fresh RecordFile on `disk` and advances the flush cursor. On any
  /// I/O failure (e.g. an injected disk fault) the partial file is reclaimed,
  /// the pool is emptied, the cursor stays put, and the streamer remains
  /// fully usable — the same window can be re-flushed once the fault clears.
  /// The caller owns the returned file (free with FreeAll) and must give this
  /// call exclusive use of `pool`.
  StatusOr<std::unique_ptr<RecordFile>> FlushWindow(Disk* disk,
                                                    BufferPool* pool);

  /// Groups already durably flushed by FlushWindow.
  size_t flushed_groups() const { return flushed_groups_; }

  /// Ends the stream: anatomizes the buffered tail and returns the complete
  /// partition over every row ever Added.
  StatusOr<Partition> Finish();

 private:
  void MaybeEmit();

  StreamingAnatomizerOptions options_;
  Rng rng_;
  std::vector<std::vector<RowId>> buckets_;  // per sensitive code
  size_t buffered_ = 0;
  size_t non_empty_ = 0;
  std::vector<std::vector<RowId>> groups_;
  std::vector<std::vector<Code>> group_values_;
  size_t flushed_groups_ = 0;
  bool finished_ = false;
};

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_STREAMING_H_
