// Streaming anatomization: groups are emitted while tuples arrive.
//
// The paper's Section 7 points at dynamic settings as future work. This
// extension maintains Anatomize's bucket structure incrementally: tuples are
// added one at a time, and whenever the buffer holds enough diversity
// (at least l non-empty buckets and at least `emit_threshold` buffered
// tuples) a group is formed from the l largest buckets, exactly like one
// iteration of Figure 3's group-creation step. Every emitted group therefore
// has l tuples with pairwise-distinct sensitive values — l-diverse by
// construction, before the stream ends.
//
// Finish() resolves the tail: the remaining buffered tuples are anatomized
// in one shot when they are still l-eligible, and the final <= l-1 residues
// are placed into earlier groups that lack their sensitive value.
//
// Flush consistency contract: FlushWindow() durably checkpoints emitted
// groups, and a checkpointed RecordFile must never silently disagree with
// the partition Finish() later returns. Finish() therefore places residues
// into *unflushed* groups whenever one lacks the residue's value; when only
// an already-flushed group qualifies, the placement is recorded as a flushed
// amendment (exposed via flushed_amendments() and written by FlushFinal(),
// the final delta window) — or, with allow_flushed_amendments = false,
// Finish() fails instead. Finish() is transactional: placements are planned
// first and committed only on full success, so a failed Finish() leaves the
// streamer exactly as it was (same buffered count, same groups) and the
// error reports the true number of stranded tuples; the caller may keep
// Add()ing and retry. Orderings that strand unplaceable tuples are reported
// as Status errors, never as a silently weaker publication.

#ifndef ANATOMY_ANATOMY_STREAMING_H_
#define ANATOMY_ANATOMY_STREAMING_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "anatomy/partition.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "table/schema.h"

namespace anatomy {

struct StreamingAnatomizerOptions {
  int l = 10;
  uint64_t seed = 1;
  /// Minimum buffered tuples before a group may be emitted. Larger values
  /// buy the largest-bucket heuristic more slack (fewer stranded tuples at
  /// Finish) at the price of latency. Must be >= l; defaults to 4 * l when 0.
  size_t emit_threshold = 0;
  /// When a Finish() residue fits no unflushed group, may it amend an
  /// already-flushed group (the amendment is then part of FlushFinal's delta
  /// window)? With false, Finish() fails instead of ever diverging from a
  /// durable checkpoint that cannot be amended downstream.
  bool allow_flushed_amendments = true;
};

/// A residue placement into a group that was already durably flushed when
/// Finish() ran: the checkpointed window lacks this record, so the final
/// delta window (FlushFinal) must carry it.
struct FlushedAmendment {
  GroupId group = 0;
  RowId row = 0;
  Code value = 0;

  bool operator==(const FlushedAmendment&) const = default;
};

class StreamingAnatomizer {
 public:
  /// `sensitive_domain` bounds the sensitive codes that may be Added.
  StreamingAnatomizer(const StreamingAnatomizerOptions& options,
                      Code sensitive_domain);

  /// Feeds one tuple; emits zero or more complete groups internally.
  /// Returns InvalidArgument for out-of-domain codes.
  Status Add(RowId row, Code sensitive_value);

  /// Groups fully formed so far (each of exactly l tuples with distinct
  /// sensitive values). Indices are stable; more groups only get appended.
  size_t emitted_groups() const { return groups_.size(); }

  /// Tuples still buffered (not yet part of any group).
  size_t buffered() const { return buffered_; }

  /// Durably checkpoints the window of groups emitted since the last
  /// successful flush: writes them as [group_id, row_id, sensitive] records
  /// into a fresh RecordFile on `disk` and advances the flush cursor. On any
  /// I/O failure (e.g. an injected disk fault) the partial file is reclaimed,
  /// the pool is emptied, the cursor stays put, and the streamer remains
  /// fully usable — the same window can be re-flushed once the fault clears.
  /// Row and group ids beyond INT32_MAX do not fit the 3-column int32 record
  /// format and fail with InvalidArgument instead of silently truncating.
  /// The caller owns the returned file (free with FreeAll) and must give this
  /// call exclusive use of `pool`.
  StatusOr<std::unique_ptr<RecordFile>> FlushWindow(Disk* disk,
                                                    BufferPool* pool);

  /// Groups already durably flushed by FlushWindow.
  size_t flushed_groups() const { return flushed_groups_; }

  /// Ends the stream: anatomizes the buffered tail and returns the complete
  /// partition over every row ever Added. Transactional — on failure the
  /// streamer is unchanged (buffered() keeps its value) and more tuples may
  /// be Added before retrying.
  StatusOr<Partition> Finish();

  /// Residues that Finish() had to place into already-flushed groups (empty
  /// until a successful Finish; always empty when nothing was flushed or
  /// every residue fit an unflushed group). Checkpointed windows plus these
  /// amendments plus FlushFinal's group records reconstruct the partition.
  const std::vector<FlushedAmendment>& flushed_amendments() const {
    return flushed_amendments_;
  }

  /// The final delta window: writes every group not yet covered by a
  /// FlushWindow checkpoint plus the flushed-group amendment records, in the
  /// same [group_id, row_id, sensitive] format. Only valid after a
  /// successful Finish(); replaying all FlushWindow files plus this file
  /// yields exactly the returned partition. Same fault contract as
  /// FlushWindow (failed flushes reclaim and can be retried).
  StatusOr<std::unique_ptr<RecordFile>> FlushFinal(Disk* disk,
                                                   BufferPool* pool);

 private:
  void MaybeEmit(size_t emit_threshold);

  StreamingAnatomizerOptions options_;
  Rng rng_;
  std::vector<std::vector<RowId>> buckets_;  // per sensitive code
  size_t buffered_ = 0;
  size_t non_empty_ = 0;
  std::vector<std::vector<RowId>> groups_;
  std::vector<std::vector<Code>> group_values_;
  /// Hash-set mirror of group_values_ so residue placement tests membership
  /// in O(1) instead of scanning (the same fix PR 1 applied to Anatomizer).
  std::vector<std::unordered_set<Code>> group_value_sets_;
  std::vector<FlushedAmendment> flushed_amendments_;
  size_t flushed_groups_ = 0;
  bool finished_ = false;
};

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_STREAMING_H_
