// External (I/O-counted) Anatomize, following the implementation described in
// the proof of Theorem 3. This is the version the paper's efficiency
// experiments (Figures 8-9) measure: the microdata lives on the simulated
// disk, every tuple moves through a 50-page buffer pool, and the result is
// the number of page I/Os.
//
// Pipeline (all passes sequential, O(n/b) I/Os total):
//   1. Hash-partition the input file by sensitive value into bucket files.
//      The fan-out is capped at (pool capacity - 2) output buffers; when the
//      number of distinct sensitive values lambda exceeds the fan-out, the
//      overflowing partitions are refined with a second hash pass - standard
//      external hashing, still O(n/b).
//   2. Group-creation: per-bucket sizes live in memory (O(lambda) words); the
//      l largest buckets are streamed through the pool one page at a time and
//      groups are appended to a group file.
//   3. Residue-assignment + publication: the <= l-1 residue tuples stay in
//      memory; one scan of the group file assigns them to admissible groups
//      and emits the QIT and ST files.
//
// Fault handling: the pipeline runs against any Disk (including a
// FaultInjectingDisk). Transient faults are absorbed by the pool's retry
// policy; permanent failures propagate as Status, and the abort path
// (PipelineGuard) reclaims every page the run allocated — a failed Run leaves
// the disk and pool exactly as it found them.

#ifndef ANATOMY_ANATOMY_EXTERNAL_ANATOMIZER_H_
#define ANATOMY_ANATOMY_EXTERNAL_ANATOMIZER_H_

#include "anatomy/anatomizer.h"
#include "anatomy/partition.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/publication.h"
#include "table/table.h"

namespace anatomy {

struct ExternalAnatomizeResult {
  /// The computed l-diverse partition (for validation and reuse).
  Partition partition;
  /// I/Os attributable to the algorithm (input pre-loading excluded).
  IoStats io;
  /// Page counts of the published files.
  size_t qit_pages = 0;
  size_t st_pages = 0;
  /// Set by RunPublished only: manifest of the committed publication, and the
  /// extra I/O spent committing the manifest chain and running the read-back
  /// audit (kept out of `io` so Figures 8-9 measure the bare algorithm).
  StorageManifest manifest;
  IoStats commit_io;
};

class ExternalAnatomizer {
 public:
  explicit ExternalAnatomizer(const AnatomizerOptions& options);

  /// Loads `microdata` onto `disk` (not counted, like the paper's
  /// pre-existing table), resets the disk counters, runs the pipeline through
  /// `pool`, and reports the I/O cost. The published files are freed before
  /// returning (repeated benchmark runs must not grow the disk). On failure
  /// every page the run allocated is reclaimed and the pool is emptied.
  StatusOr<ExternalAnatomizeResult> Run(const Microdata& microdata, Disk* disk,
                                        BufferPool* pool) const;

  /// Like Run, but leaves the QIT/ST on disk and commits them crash-
  /// consistently: manifest chain written root-last (the commit point), then
  /// a VerifyPublication read-back audit. On any failure — including a
  /// corrupted published page caught by the audit — the publication is
  /// reclaimed and an error returned; there is no half-published state.
  StatusOr<ExternalAnatomizeResult> RunPublished(const Microdata& microdata,
                                                 Disk* disk,
                                                 BufferPool* pool) const;

 private:
  AnatomizerOptions options_;
};

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_EXTERNAL_ANATOMIZER_H_
