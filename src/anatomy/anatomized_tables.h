// The published pair of tables (Definition 3): quasi-identifier table (QIT)
// and sensitive table (ST), plus the compact in-memory model the estimators
// and privacy analyzers work from.

#ifndef ANATOMY_ANATOMY_ANATOMIZED_TABLES_H_
#define ANATOMY_ANATOMY_ANATOMIZED_TABLES_H_

#include <cstdint>
#include <vector>

#include "anatomy/partition.h"
#include "common/status.h"
#include "table/table.h"

namespace anatomy {

/// The anatomized publication of a microdata table. Rows of the QIT are in
/// the same order as the microdata rows they came from — publishing order
/// carries no information because group membership, not position, is the
/// published structure (and a publisher can shuffle the CSV export freely).
class AnatomizedTables {
 public:
  /// Builds QIT and ST from an l-diverse partition (Definition 3). The
  /// partition must cover the microdata exactly.
  static StatusOr<AnatomizedTables> Build(const Microdata& microdata,
                                          const Partition& partition);

  /// Reconstructs the published view from a QIT and ST that came from disk
  /// (e.g. the CSV files a publisher released) — the analyst-side entry
  /// point. Validates the publication's internal consistency:
  /// schemas (last QIT column and first ST column are Group-ID), group ids
  /// dense in [0, m), and per-group ST counts summing to the group's QIT
  /// row count. Returns InvalidArgument on any mismatch.
  static StatusOr<AnatomizedTables> FromPublishedTables(Table qit, Table st);

  /// QIT with schema (Aqi_1, ..., Aqi_d, Group-ID). Group-ID codes are
  /// 0-based; they display 1-based like the paper via the attribute's
  /// numeric base.
  const Table& qit() const { return qit_; }

  /// ST with schema (Group-ID, As, Count).
  const Table& st() const { return st_; }

  size_t num_groups() const { return group_sizes_.size(); }
  RowId num_rows() const { return static_cast<RowId>(group_of_row_.size()); }

  uint32_t group_size(GroupId g) const { return group_sizes_[g]; }
  GroupId group_of_row(RowId r) const { return group_of_row_[r]; }

  /// Sensitive histogram of group g: (sensitive code, count), sorted by code.
  const std::vector<std::pair<Code, uint32_t>>& group_histogram(
      GroupId g) const {
    return group_histograms_[g];
  }

  /// Count of sensitive value v in group g (0 if absent). The c_j(v) of the
  /// paper.
  uint32_t GroupCount(GroupId g, Code v) const;

  /// Number of distinct sensitive values across all groups' histograms.
  size_t TotalStRecords() const;

 private:
  AnatomizedTables() = default;

  Table qit_;
  Table st_;
  std::vector<uint32_t> group_sizes_;
  std::vector<GroupId> group_of_row_;
  std::vector<std::vector<std::pair<Code, uint32_t>>> group_histograms_;
};

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_ANATOMIZED_TABLES_H_
