#include "anatomy/sharded_anatomizer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "anatomy/eligibility.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anatomy {

namespace {

/// Smallest per-shard BufferPool the external pipeline is tested with; below
/// this the stage-1 fan-out degenerates to one output buffer.
constexpr size_t kMinShardPoolPages = 8;

/// Per-shard seed derivation. With one requested shard the master seed is
/// used directly, which is what makes shards = 1 byte-identical to the
/// sequential Anatomizer (whose Rng is seeded with the master seed, not with
/// stream 0 of it).
uint64_t ShardSeed(const ShardedAnatomizerOptions& options, size_t shard) {
  if (options.shards == 1) return options.seed;
  return SplitMix64(options.seed ^ static_cast<uint64_t>(shard));
}

/// True iff a shard with these value counts and size admits an l-diverse
/// partition (the eligibility condition of Property 1, per shard).
bool ShardEligible(std::span<const uint32_t> counts, uint64_t rows, int l) {
  if (rows == 0) return false;
  for (uint32_t c : counts) {
    if (static_cast<uint64_t>(c) * static_cast<uint64_t>(l) > rows) {
      return false;
    }
  }
  return true;
}

/// Appends `partition`'s groups to `merged`, translating the shard-local row
/// ids through `rows` (local index -> global RowId). Group ids are prefix-
/// offset implicitly: groups are appended in shard order.
void AppendShardPartition(const Partition& partition,
                          const std::vector<RowId>& rows, Partition& merged) {
  for (const auto& group : partition.groups) {
    std::vector<RowId> global;
    global.reserve(group.size());
    for (RowId local : group) global.push_back(rows[local]);
    merged.groups.push_back(std::move(global));
  }
}

}  // namespace

StatusOr<ShardSplit> SplitForSharding(std::span<const Code> sensitive,
                                      Code domain, int l, size_t shards) {
  if (l < 2) {
    return Status::InvalidArgument("l must be >= 2 for meaningful diversity");
  }
  if (domain <= 0) {
    return Status::InvalidArgument("sensitive domain must be positive");
  }
  if (shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (sensitive.empty()) {
    return Status::FailedPrecondition("cannot shard an empty table");
  }

  // ---- Cyclic deal: occurrence i of value v goes to shard i mod S, so the
  // per-shard count of v is ceil(c_v / S) or floor(c_v / S) exactly. Rows
  // are visited in ascending order, so every shard's row list is sorted. ----
  const size_t dsize = static_cast<size_t>(domain);
  ArenaVector<uint32_t> next_shard(dsize, 0);
  // shard_rows elements are std::vector<RowId>: they move into
  // ShardSplit::shard_rows, whose layout is public API.
  std::vector<std::vector<RowId>> shard_rows(shards);
  ArenaVector<ArenaVector<uint32_t>> shard_counts(
      shards, ArenaVector<uint32_t>(dsize, 0));
  for (RowId r = 0; r < sensitive.size(); ++r) {
    const Code v = sensitive[r];
    if (v < 0 || v >= domain) {
      return Status::InvalidArgument("sensitive code out of domain");
    }
    const size_t s = next_shard[static_cast<size_t>(v)]++ % shards;
    shard_rows[s].push_back(r);
    ++shard_counts[s][static_cast<size_t>(v)];
  }

  // Global eligibility: without it no merge sequence can terminate in an
  // eligible shard (the fully merged shard is the input itself).
  {
    ArenaVector<uint32_t> totals(dsize, 0);
    for (size_t s = 0; s < shards; ++s) {
      for (size_t v = 0; v < dsize; ++v) totals[v] += shard_counts[s][v];
    }
    if (!ShardEligible(totals, sensitive.size(), l)) {
      return Status::FailedPrecondition(
          "not " + std::to_string(l) +
          "-eligible: a sensitive value exceeds n/l occurrences; no shard "
          "split can fix that");
    }
  }

  // ---- Deterministic merge of ineligible shards. The lowest-indexed
  // ineligible live shard is folded into its cyclic successor; each fold
  // removes one live shard, so the loop terminates, and the single-shard
  // fixed point is the (eligible) input. ----
  ShardSplit split;
  split.requested = shards;
  std::vector<size_t> live(shards);
  for (size_t s = 0; s < shards; ++s) live[s] = s;
  while (live.size() > 1) {
    size_t victim_pos = live.size();
    for (size_t pos = 0; pos < live.size(); ++pos) {
      const size_t s = live[pos];
      if (!ShardEligible(shard_counts[s], shard_rows[s].size(), l)) {
        victim_pos = pos;
        break;
      }
    }
    if (victim_pos == live.size()) break;  // every live shard is eligible
    const size_t src = live[victim_pos];
    const size_t dst = live[(victim_pos + 1) % live.size()];
    std::vector<RowId> merged_rows;
    merged_rows.reserve(shard_rows[src].size() + shard_rows[dst].size());
    std::merge(shard_rows[src].begin(), shard_rows[src].end(),
               shard_rows[dst].begin(), shard_rows[dst].end(),
               std::back_inserter(merged_rows));
    shard_rows[dst] = std::move(merged_rows);
    shard_rows[src].clear();
    for (size_t v = 0; v < dsize; ++v) {
      shard_counts[dst][v] += shard_counts[src][v];
    }
    live.erase(live.begin() + static_cast<ptrdiff_t>(victim_pos));
    ++split.merges;
  }

  split.shard_rows.reserve(live.size());
  for (size_t s : live) split.shard_rows.push_back(std::move(shard_rows[s]));
  return split;
}

ShardedAnatomizer::ShardedAnatomizer(const ShardedAnatomizerOptions& options)
    : options_(options) {}

StatusOr<ShardedAnatomizeResult> ShardedAnatomizer::Run(
    const Microdata& microdata) const {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  ANATOMY_RETURN_IF_ERROR(CheckEligibility(microdata, options_.l));
  obs::ScopedSpan run_span("anatomize.sharded.run", "anatomize");
  const std::vector<Code>& sensitive =
      microdata.table.column(microdata.sensitive_column);
  const Code domain = microdata.sensitive_attribute().domain_size;

  obs::ScopedSpan split_span("anatomize.sharded.split", "anatomize");
  ANATOMY_ASSIGN_OR_RETURN(
      ShardSplit split,
      SplitForSharding(sensitive, domain, options_.l, options_.shards));
  split_span.End();

  const size_t num_shards = split.shard_rows.size();
  std::vector<StatusOr<Partition>> shard_partitions(
      num_shards, StatusOr<Partition>(Status::Internal("shard never ran")));

  {
    ThreadPool pool(options_.num_threads);
    for (size_t s = 0; s < num_shards; ++s) {
      pool.Submit([this, s, &split, &sensitive, domain, &shard_partitions] {
        obs::ScopedSpan shard_span("anatomize.shard.run", "anatomize");
        const std::vector<RowId>& rows = split.shard_rows[s];
        ArenaVector<Code> codes;
        codes.reserve(rows.size());
        for (RowId r : rows) codes.push_back(sensitive[r]);
        Anatomizer shard_anatomizer(
            AnatomizerOptions{.l = options_.l, .seed = ShardSeed(options_, s)});
        shard_partitions[s] = shard_anatomizer.ComputePartitionFromCodes(
            codes, domain, BucketPolicy::kLargestFirst);
      });
    }
    pool.Wait();
  }

  ShardedAnatomizeResult result;
  result.shards_run = num_shards;
  result.merged_shards = split.merges;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!shard_partitions[s].ok()) {
      return Status(shard_partitions[s].status().code(),
                    "shard " + std::to_string(s) + " of " +
                        std::to_string(num_shards) + " failed: " +
                        shard_partitions[s].status().message());
    }
    AppendShardPartition(shard_partitions[s].value(), split.shard_rows[s],
                         result.partition);
  }

  if (obs::MetricsEnabled()) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    registry.GetCounter("anatomize.shard.runs")->Increment();
    registry.GetCounter("anatomize.shard.shards_run")->Increment(num_shards);
    registry.GetCounter("anatomize.shard.merged")->Increment(split.merges);
    registry.GetCounter("anatomize.shard.groups")
        ->Increment(result.partition.groups.size());
  }
  return result;
}

ShardedExternalAnatomizer::ShardedExternalAnatomizer(
    const ShardedAnatomizerOptions& options)
    : options_(options) {}

StatusOr<ShardedExternalAnatomizeResult> ShardedExternalAnatomizer::Run(
    const Microdata& microdata, std::span<Disk* const> disks,
    size_t total_pool_pages) const {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  ANATOMY_RETURN_IF_ERROR(CheckEligibility(microdata, options_.l));
  if (disks.size() < options_.shards) {
    return Status::InvalidArgument(
        "need one disk per requested shard: got " +
        std::to_string(disks.size()) + " disks for " +
        std::to_string(options_.shards) + " shards");
  }
  obs::ScopedSpan run_span("external_anatomize.sharded.run",
                           "external_anatomize");
  const std::vector<Code>& sensitive =
      microdata.table.column(microdata.sensitive_column);
  const Code domain = microdata.sensitive_attribute().domain_size;
  ANATOMY_ASSIGN_OR_RETURN(
      ShardSplit split,
      SplitForSharding(sensitive, domain, options_.l, options_.shards));
  const size_t num_shards = split.shard_rows.size();

  // Per-shard budgets sum to the configured pool: pages / S each, the
  // remainder spread over the first shards.
  ShardedExternalAnatomizeResult result;
  if (total_pool_pages / num_shards < kMinShardPoolPages) {
    return Status::InvalidArgument(
        "pool of " + std::to_string(total_pool_pages) + " pages is too small "
        "for " + std::to_string(num_shards) + " shards (need >= " +
        std::to_string(kMinShardPoolPages) + " pages each)");
  }
  result.shard_pool_pages.resize(num_shards, total_pool_pages / num_shards);
  for (size_t s = 0; s < total_pool_pages % num_shards; ++s) {
    ++result.shard_pool_pages[s];
  }

  std::vector<StatusOr<ExternalAnatomizeResult>> shard_results(
      num_shards,
      StatusOr<ExternalAnatomizeResult>(Status::Internal("shard never ran")));
  {
    ThreadPool pool(options_.num_threads);
    for (size_t s = 0; s < num_shards; ++s) {
      pool.Submit([this, s, &split, &microdata, &disks, &result,
                   &shard_results] {
        obs::ScopedSpan shard_span("external_anatomize.shard.run",
                                   "external_anatomize");
        Microdata shard_md;
        shard_md.table = microdata.table.SelectRows(split.shard_rows[s]);
        shard_md.qi_columns = microdata.qi_columns;
        shard_md.sensitive_column = microdata.sensitive_column;
        BufferPool shard_pool(disks[s], result.shard_pool_pages[s]);
        ExternalAnatomizer shard_anatomizer(
            AnatomizerOptions{.l = options_.l, .seed = ShardSeed(options_, s)});
        shard_results[s] =
            shard_anatomizer.Run(shard_md, disks[s], &shard_pool);
      });
    }
    pool.Wait();
  }

  result.shards_run = num_shards;
  result.merged_shards = split.merges;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!shard_results[s].ok()) {
      return Status(shard_results[s].status().code(),
                    "external shard " + std::to_string(s) + " of " +
                        std::to_string(num_shards) + " failed: " +
                        shard_results[s].status().message());
    }
    const ExternalAnatomizeResult& shard = shard_results[s].value();
    AppendShardPartition(shard.partition, split.shard_rows[s],
                         result.partition);
    result.io += shard.io;
    result.qit_pages += shard.qit_pages;
    result.st_pages += shard.st_pages;
  }

  if (obs::MetricsEnabled()) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    registry.GetCounter("anatomize.shard.external_runs")->Increment();
    registry.GetCounter("anatomize.shard.shards_run")->Increment(num_shards);
    registry.GetCounter("anatomize.shard.merged")->Increment(split.merges);
  }
  return result;
}

StatusOr<ShardedPublishResult> ShardedExternalAnatomizer::RunPublished(
    const Microdata& microdata, std::span<Disk* const> disks,
    std::span<BufferPool* const> pools) const {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  ANATOMY_RETURN_IF_ERROR(CheckEligibility(microdata, options_.l));
  if (disks.size() < options_.shards || pools.size() < options_.shards) {
    return Status::InvalidArgument(
        "need one disk and one pool per requested shard: got " +
        std::to_string(disks.size()) + " disks / " +
        std::to_string(pools.size()) + " pools for " +
        std::to_string(options_.shards) + " shards");
  }
  obs::ScopedSpan run_span("external_anatomize.sharded.publish",
                           "external_anatomize");
  const std::vector<Code>& sensitive =
      microdata.table.column(microdata.sensitive_column);
  const Code domain = microdata.sensitive_attribute().domain_size;
  ANATOMY_ASSIGN_OR_RETURN(
      ShardSplit split,
      SplitForSharding(sensitive, domain, options_.l, options_.shards));
  const size_t num_shards = split.shard_rows.size();

  std::vector<StatusOr<ExternalAnatomizeResult>> shard_results(
      num_shards,
      StatusOr<ExternalAnatomizeResult>(Status::Internal("shard never ran")));
  {
    ThreadPool thread_pool(options_.num_threads);
    for (size_t s = 0; s < num_shards; ++s) {
      thread_pool.Submit([this, s, &split, &microdata, &disks, &pools,
                          &shard_results] {
        obs::ScopedSpan shard_span("external_anatomize.shard.publish",
                                   "external_anatomize");
        Microdata shard_md;
        shard_md.table = microdata.table.SelectRows(split.shard_rows[s]);
        shard_md.qi_columns = microdata.qi_columns;
        shard_md.sensitive_column = microdata.sensitive_column;
        ExternalAnatomizer shard_anatomizer(
            AnatomizerOptions{.l = options_.l, .seed = ShardSeed(options_, s)});
        shard_results[s] =
            shard_anatomizer.RunPublished(shard_md, disks[s], pools[s]);
      });
    }
    thread_pool.Wait();
  }

  // All-or-none: a failed shard means the fleet-wide epoch does not exist,
  // so every shard that DID commit is rolled back before the error returns.
  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_results[s].ok()) continue;
    for (size_t t = 0; t < num_shards; ++t) {
      if (!shard_results[t].ok()) continue;
      // Best-effort reclaim; the commit succeeded so the pages are known.
      (void)DiscardPublication(disks[t], pools[t],
                               shard_results[t].value().manifest);
    }
    return Status(shard_results[s].status().code(),
                  "published shard " + std::to_string(s) + " of " +
                      std::to_string(num_shards) + " failed (all shards "
                      "rolled back): " + shard_results[s].status().message());
  }

  ShardedPublishResult result;
  result.shards_run = num_shards;
  result.merged_shards = split.merges;
  result.manifests.reserve(num_shards);
  result.shard_partitions.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    ExternalAnatomizeResult& shard = shard_results[s].value();
    AppendShardPartition(shard.partition, split.shard_rows[s], result.merged);
    Partition global;
    AppendShardPartition(shard.partition, split.shard_rows[s], global);
    result.shard_partitions.push_back(std::move(global));
    result.manifests.push_back(std::move(shard.manifest));
    result.io += shard.io;
    result.commit_io += shard.commit_io;
  }
  result.split = std::move(split);

  if (obs::MetricsEnabled()) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    registry.GetCounter("anatomize.shard.published_runs")->Increment();
    registry.GetCounter("anatomize.shard.shards_run")->Increment(num_shards);
    registry.GetCounter("anatomize.shard.merged")
        ->Increment(result.merged_shards);
  }
  return result;
}

}  // namespace anatomy
