#include "anatomy/anatomizer.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "anatomy/eligibility.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anatomy {

namespace {

/// Group-membership hash sets on the arena: one per emitted group, hot in
/// both the draw loop and residue assignment.
using ArenaCodeSet = std::unordered_set<Code, std::hash<Code>,
                                        std::equal_to<Code>,
                                        ArenaAllocator<Code>>;

/// Per-sensitive-value bucket of row ids. Removal order is randomized by
/// swapping a random element to the back before popping, which implements
/// Line 7's "remove an arbitrary tuple" without O(n) erasure.
struct Bucket {
  Code value = 0;
  ArenaVector<RowId> rows;

  RowId PopRandom(Rng& rng) {
    ANATOMY_CHECK(!rows.empty());
    const size_t i = rng.NextBounded(rows.size());
    std::swap(rows[i], rows.back());
    const RowId r = rows.back();
    rows.pop_back();
    return r;
  }
};

using BucketList = ArenaVector<Bucket>;

BucketList HashBySensitiveValue(std::span<const Code> sensitive,
                                Code domain) {
  BucketList buckets(domain);
  for (Code v = 0; v < domain; ++v) buckets[v].value = v;
  for (RowId r = 0; r < sensitive.size(); ++r) {
    buckets[sensitive[r]].rows.push_back(r);
  }
  // Drop empty buckets: the algorithm only tracks values that occur.
  BucketList live;
  live.reserve(buckets.size());
  for (auto& b : buckets) {
    if (!b.rows.empty()) live.push_back(std::move(b));
  }
  return live;
}

/// Lazy max-heap over bucket sizes: entries carry the size at push time and
/// are re-validated on pop, so each size change is O(log lambda) amortized.
class LargestBucketQueue {
 public:
  explicit LargestBucketQueue(const BucketList& buckets) {
    for (size_t i = 0; i < buckets.size(); ++i) {
      heap_.push({buckets[i].rows.size(), i});
    }
  }

  /// Pops the index of the currently largest bucket, given live sizes.
  size_t PopLargest(const BucketList& buckets) {
    for (;;) {
      ANATOMY_CHECK(!heap_.empty());
      auto [size, idx] = heap_.top();
      heap_.pop();
      if (size == buckets[idx].rows.size()) return idx;
      if (!buckets[idx].rows.empty()) {
        heap_.push({buckets[idx].rows.size(), idx});  // Stale entry: refresh.
      }
    }
  }

  void Push(size_t idx, size_t size) {
    if (size > 0) heap_.push({size, idx});
  }

 private:
  std::priority_queue<std::pair<size_t, size_t>,
                      ArenaVector<std::pair<size_t, size_t>>>
      heap_;
};

}  // namespace

Anatomizer::Anatomizer(const AnatomizerOptions& options) : options_(options) {}

StatusOr<Partition> Anatomizer::ComputePartition(
    const Microdata& microdata) const {
  return ComputePartitionWithPolicy(microdata, BucketPolicy::kLargestFirst);
}

StatusOr<Partition> Anatomizer::ComputePartitionWithPolicy(
    const Microdata& microdata, BucketPolicy policy) const {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  ANATOMY_RETURN_IF_ERROR(CheckEligibility(microdata, options_.l));
  return ComputePartitionFromCodes(microdata.table.column(microdata.sensitive_column),
                                   microdata.sensitive_attribute().domain_size,
                                   policy);
}

StatusOr<Partition> Anatomizer::ComputePartitionFromCodes(
    std::span<const Code> sensitive, Code domain, BucketPolicy policy) const {
  if (options_.l < 2) {
    return Status::InvalidArgument("l must be >= 2 for meaningful diversity");
  }
  if (domain <= 0) {
    return Status::InvalidArgument("sensitive domain must be positive");
  }
  // One fused pass validates the codes and checks eligibility (Property 1's
  // precondition: no value may occur more than n/l times).
  {
    ArenaVector<uint64_t> counts(static_cast<size_t>(domain), 0);
    for (Code v : sensitive) {
      if (v < 0 || v >= domain) {
        return Status::InvalidArgument("sensitive code out of domain");
      }
      ++counts[static_cast<size_t>(v)];
    }
    const uint64_t n = sensitive.size();
    for (Code v = 0; v < domain; ++v) {
      const uint64_t c = counts[static_cast<size_t>(v)];
      if (c * static_cast<uint64_t>(options_.l) > n) {
        return Status::FailedPrecondition(
            "not " + std::to_string(options_.l) +
            "-eligible: sensitive code " + std::to_string(v) + " occurs " +
            std::to_string(c) + " times in " + std::to_string(n) + " tuples");
      }
    }
  }
  const size_t l = static_cast<size_t>(options_.l);
  Rng rng(options_.seed);

  // Phase timings go to the registry only when metrics are on; a null
  // recorder disarms the ScopedTimer so the disabled path skips the clock.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const bool metrics_on = obs::MetricsEnabled();

  obs::ScopedSpan bucketize_span("anatomize.bucketize", "anatomize");
  BucketList buckets;
  {
    ScopedTimer<obs::Histogram> timer(
        metrics_on ? registry.GetHistogram("anatomize.phase.bucketize_ns")
                   : nullptr);
    buckets = HashBySensitiveValue(sensitive, domain);
  }
  bucketize_span.End();
  size_t non_empty = buckets.size();

  Partition partition;
  /// Sensitive values present in each group, parallel to partition.groups.
  /// A hash set per group so residue assignment tests membership in O(1)
  /// instead of scanning the group's value list.
  ArenaVector<ArenaCodeSet> group_values;

  // ---- Group-creation step (Lines 3-8). ----
  obs::ScopedSpan group_draw_span("anatomize.group_draw", "anatomize");
  Stopwatch group_draw_watch;
  LargestBucketQueue queue(buckets);
  size_t round_robin_cursor = 0;
  ArenaVector<size_t> drawn;  // bucket indices used by this iteration
  while (non_empty >= l) {
    drawn.clear();
    if (policy == BucketPolicy::kLargestFirst) {
      for (size_t k = 0; k < l; ++k) drawn.push_back(queue.PopLargest(buckets));
    } else {
      // Ablation: take the next l non-empty buckets in cyclic order. The
      // scan is bounded to one full cycle: if a cycle cannot produce l
      // distinct non-empty buckets, the running `non_empty` count has
      // drifted from reality and an unbounded scan would spin forever.
      size_t scanned = 0;
      while (drawn.size() < l && scanned < buckets.size()) {
        const size_t idx = round_robin_cursor++ % buckets.size();
        ++scanned;
        if (!buckets[idx].rows.empty() &&
            std::find(drawn.begin(), drawn.end(), idx) == drawn.end()) {
          drawn.push_back(idx);
        }
      }
      if (drawn.size() < l) {
        // Nothing was popped this round, so the drawn buckets are intact;
        // recount, hand the remaining tuples to residue assignment, and
        // flag genuine bookkeeping corruption (a recount that still admits
        // another group means the cycle scan itself is broken).
        non_empty = static_cast<size_t>(
            std::count_if(buckets.begin(), buckets.end(),
                          [](const Bucket& b) { return !b.rows.empty(); }));
        if (non_empty >= l) {
          return Status::Internal(
              "round-robin policy found fewer than l distinct non-empty "
              "buckets although a recount says l exist");
        }
        break;
      }
    }
    // The group row list itself stays std::vector<RowId>: it is moved into
    // Partition, whose layout is public API.
    std::vector<RowId> group;
    ArenaCodeSet values;
    group.reserve(l);
    values.reserve(l);
    for (size_t idx : drawn) {
      Bucket& bucket = buckets[idx];
      group.push_back(bucket.PopRandom(rng));
      values.insert(bucket.value);
      if (bucket.rows.empty()) {
        --non_empty;
      } else if (policy == BucketPolicy::kLargestFirst) {
        queue.Push(idx, bucket.rows.size());
      }
    }
    partition.groups.push_back(std::move(group));
    group_values.push_back(std::move(values));
  }
  group_draw_span.End();
  if (metrics_on) {
    registry.GetHistogram("anatomize.phase.group_draw_ns")
        ->Record(group_draw_watch.ElapsedNanos());
  }

  // ---- Residue-assignment step (Lines 9-12). ----
  obs::ScopedSpan residue_span("anatomize.residue_assign", "anatomize");
  Stopwatch residue_watch;
  // Under eligibility each remaining bucket holds exactly one tuple
  // (Property 1) when running the paper's policy; the round-robin ablation
  // can leave more, in which case the same per-tuple assignment is attempted
  // and may correctly fail.
  ArenaVector<GroupId> candidates;
  for (const Bucket& bucket : buckets) {
    for (RowId r : bucket.rows) {
      // S' = groups without this sensitive value (Line 11). Candidates are
      // collected in ascending group order so the rng draw below sees the
      // same sequence as the original linear-scan implementation — the
      // output partition is byte-identical for a fixed seed.
      candidates.clear();
      for (GroupId g = 0; g < partition.groups.size(); ++g) {
        if (!group_values[g].contains(bucket.value)) {
          candidates.push_back(g);
        }
      }
      if (candidates.empty()) {
        return Status::Internal(
            "residue tuple has no admissible QI-group; input was not "
            "eligible or a non-paper bucket policy stranded too many tuples");
      }
      const GroupId g = candidates[rng.NextBounded(candidates.size())];
      partition.groups[g].push_back(r);
      group_values[g].insert(bucket.value);
    }
  }
  residue_span.End();
  if (metrics_on) {
    registry.GetHistogram("anatomize.phase.residue_ns")
        ->Record(residue_watch.ElapsedNanos());
    size_t residues = 0;
    for (const Bucket& bucket : buckets) residues += bucket.rows.size();
    registry.GetCounter("anatomize.runs")->Increment();
    registry.GetCounter("anatomize.groups")
        ->Increment(partition.groups.size());
    registry.GetCounter("anatomize.residues")->Increment(residues);
  }

  if (partition.groups.empty()) {
    return Status::FailedPrecondition(
        "cardinality below l: no QI-group could be formed");
  }
  return partition;
}

}  // namespace anatomy
