#include "anatomy/multi_sensitive.h"

#include <algorithm>
#include <queue>
#include <set>

#include "anatomy/eligibility.h"
#include "common/check.h"
#include "common/rng.h"

namespace anatomy {

Status MultiMicrodata::Validate() const {
  if (sensitive_columns.empty()) {
    return Status::InvalidArgument("at least one sensitive attribute required");
  }
  std::set<size_t> seen;
  for (size_t c : qi_columns) {
    if (c >= table.num_columns()) {
      return Status::InvalidArgument("QI column out of range");
    }
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("duplicate QI column");
    }
  }
  for (size_t c : sensitive_columns) {
    if (c >= table.num_columns()) {
      return Status::InvalidArgument("sensitive column out of range");
    }
    if (!seen.insert(c).second) {
      return Status::InvalidArgument(
          "column used twice across QI/sensitive sets");
    }
  }
  return Status::OK();
}

Microdata MultiMicrodata::WithSensitive(size_t which) const {
  ANATOMY_CHECK(which < sensitive_columns.size());
  Microdata md;
  md.table = table;
  md.qi_columns = qi_columns;
  md.sensitive_column = sensitive_columns[which];
  return md;
}

MultiAnatomizer::MultiAnatomizer(const MultiAnatomizerOptions& options)
    : options_(options) {}

StatusOr<Partition> MultiAnatomizer::ComputePartition(
    const MultiMicrodata& microdata) const {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  const size_t k = microdata.sensitive_columns.size();
  for (size_t s = 0; s < k; ++s) {
    ANATOMY_RETURN_IF_ERROR(
        CheckEligibility(microdata.WithSensitive(s), options_.l));
  }
  const size_t l = static_cast<size_t>(options_.l);
  Rng rng(options_.seed);

  // Buckets on the primary (first) sensitive attribute, like Anatomize.
  const size_t primary = microdata.sensitive_columns[0];
  const Code domain = microdata.table.schema().attribute(primary).domain_size;
  std::vector<std::vector<RowId>> buckets(domain);
  for (RowId r = 0; r < microdata.n(); ++r) {
    buckets[microdata.table.at(r, primary)].push_back(r);
  }
  for (auto& b : buckets) rng.Shuffle(b);

  size_t non_empty = 0;
  std::priority_queue<std::pair<size_t, size_t>> heap;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (!buckets[i].empty()) {
      heap.push({buckets[i].size(), i});
      ++non_empty;
    }
  }

  Partition partition;
  // Values already present in the group under construction, per attribute.
  std::vector<std::set<Code>> used(k);

  auto conflicts = [&](RowId r) {
    for (size_t s = 0; s < k; ++s) {
      if (used[s].count(microdata.table.at(r, microdata.sensitive_columns[s]))) {
        return true;
      }
    }
    return false;
  };
  auto take = [&](RowId r, std::vector<RowId>& group) {
    for (size_t s = 0; s < k; ++s) {
      used[s].insert(microdata.table.at(r, microdata.sensitive_columns[s]));
    }
    group.push_back(r);
  };

  while (non_empty >= l) {
    for (auto& u : used) u.clear();
    std::vector<RowId> group;
    std::vector<std::pair<size_t, size_t>> popped;  // for re-push

    // Draw from largest primary buckets, skipping tuples that collide on a
    // secondary attribute; within a bucket scan from a random offset so ties
    // do not always pick the same tuples.
    while (group.size() < l && !heap.empty()) {
      auto [size, idx] = heap.top();
      heap.pop();
      if (size != buckets[idx].size() || buckets[idx].empty()) {
        if (!buckets[idx].empty()) heap.push({buckets[idx].size(), idx});
        continue;
      }
      auto& bucket = buckets[idx];
      bool taken = false;
      for (size_t probe = 0; probe < bucket.size(); ++probe) {
        const size_t pos = bucket.size() - 1 - probe;  // back = random order
        if (!conflicts(bucket[pos])) {
          take(bucket[pos], group);
          std::swap(bucket[pos], bucket.back());
          bucket.pop_back();
          taken = true;
          break;
        }
      }
      if (bucket.empty()) {
        --non_empty;
      } else {
        popped.push_back({bucket.size(), idx});
      }
      if (!taken) continue;
    }
    for (auto& e : popped) heap.push(e);

    if (group.size() < l) {
      // Could not complete a conflict-free group; return the drawn tuples
      // and stop forming groups.
      for (RowId r : group) {
        buckets[microdata.table.at(r, primary)].push_back(r);
      }
      break;
    }
    partition.groups.push_back(std::move(group));
  }

  if (partition.groups.empty()) {
    return Status::FailedPrecondition(
        "could not form any simultaneously diverse QI-group");
  }

  // Residue assignment: place each leftover tuple into a group where all of
  // its sensitive values are absent.
  std::vector<std::vector<std::set<Code>>> group_used(partition.num_groups(),
                                                      std::vector<std::set<Code>>(k));
  for (GroupId g = 0; g < partition.num_groups(); ++g) {
    for (RowId r : partition.groups[g]) {
      for (size_t s = 0; s < k; ++s) {
        group_used[g][s].insert(
            microdata.table.at(r, microdata.sensitive_columns[s]));
      }
    }
  }
  for (auto& bucket : buckets) {
    for (RowId r : bucket) {
      std::vector<GroupId> candidates;
      for (GroupId g = 0; g < partition.num_groups(); ++g) {
        bool ok = true;
        for (size_t s = 0; s < k && ok; ++s) {
          ok = group_used[g][s].count(microdata.table.at(
                   r, microdata.sensitive_columns[s])) == 0;
        }
        if (ok) candidates.push_back(g);
      }
      if (candidates.empty()) {
        return Status::Internal(
            "multi-sensitive heuristic stranded a tuple; no group can absorb "
            "it without breaking simultaneous diversity");
      }
      const GroupId g = candidates[rng.NextBounded(candidates.size())];
      partition.groups[g].push_back(r);
      for (size_t s = 0; s < k; ++s) {
        group_used[g][s].insert(
            microdata.table.at(r, microdata.sensitive_columns[s]));
      }
    }
  }
  return partition;
}

Status ValidateMultiLDiverse(const MultiMicrodata& microdata,
                             const Partition& partition, int l) {
  ANATOMY_RETURN_IF_ERROR(partition.ValidateCover(microdata.n()));
  for (size_t s = 0; s < microdata.sensitive_columns.size(); ++s) {
    const Microdata view = microdata.WithSensitive(s);
    ANATOMY_RETURN_IF_ERROR(partition.ValidateLDiverse(view, l));
  }
  return Status::OK();
}

std::vector<Table> BuildMultiSt(const MultiMicrodata& microdata,
                                const Partition& partition) {
  std::vector<Table> tables;
  tables.reserve(microdata.sensitive_columns.size());
  for (size_t s = 0; s < microdata.sensitive_columns.size(); ++s) {
    const Microdata view = microdata.WithSensitive(s);
    std::vector<AttributeDef> defs;
    defs.push_back(MakeNumerical(
        "Group-ID", static_cast<Code>(partition.num_groups()), /*base=*/1));
    defs.push_back(view.sensitive_attribute());
    defs.push_back(MakeNumerical(
        "Count", static_cast<Code>(microdata.n()) + 1));
    Table st(std::make_shared<Schema>(std::move(defs)));
    std::vector<Code> record(3);
    for (GroupId g = 0; g < partition.num_groups(); ++g) {
      for (const auto& [value, count] :
           GroupSensitiveHistogram(view, partition.groups[g])) {
        record[0] = static_cast<Code>(g);
        record[1] = value;
        record[2] = static_cast<Code>(count);
        st.AppendRow(record);
      }
    }
    tables.push_back(std::move(st));
  }
  return tables;
}

}  // namespace anatomy
