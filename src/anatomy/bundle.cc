#include "anatomy/bundle.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "table/csv.h"
#include "table/schema_io.h"

namespace anatomy {

namespace {

/// Inequality 1 over every group (duplicated from privacy/ldiversity.h to
/// keep the core library free of an upward dependency; the privacy module's
/// verifier remains the API of record).
Status CheckDiversity(const AnatomizedTables& tables, int l) {
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  for (GroupId g = 0; g < tables.num_groups(); ++g) {
    uint64_t max_count = 0;
    for (const auto& [value, count] : tables.group_histogram(g)) {
      max_count = std::max<uint64_t>(max_count, count);
    }
    if (max_count * static_cast<uint64_t>(l) > tables.group_size(g)) {
      return Status::FailedPrecondition(
          "group " + std::to_string(g + 1) + " is not " + std::to_string(l) +
          "-diverse");
    }
  }
  return Status::OK();
}

constexpr char kQitSchemaFile[] = "/qit_schema.txt";
constexpr char kStSchemaFile[] = "/st_schema.txt";
constexpr char kQitFile[] = "/qit.csv";
constexpr char kStFile[] = "/st.csv";
constexpr char kManifestFile[] = "/manifest.txt";

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SerializeManifest(const PublicationManifest& manifest) {
  std::ostringstream os;
  os << "format_version=" << manifest.format_version << "\n"
     << "l=" << manifest.l << "\n"
     << "rows=" << manifest.rows << "\n"
     << "groups=" << manifest.groups << "\n";
  return os.str();
}

StatusOr<PublicationManifest> ParseManifest(const std::string& text) {
  PublicationManifest manifest;
  bool saw_version = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("manifest line without '=': " +
                                     std::string(trimmed));
    }
    const std::string key(Trim(trimmed.substr(0, eq)));
    const std::string value(Trim(trimmed.substr(eq + 1)));
    char* end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || v < 0) {
      return Status::InvalidArgument("bad manifest value for '" + key + "'");
    }
    if (key == "format_version") {
      manifest.format_version = static_cast<int>(v);
      saw_version = true;
    } else if (key == "l") {
      manifest.l = static_cast<int>(v);
    } else if (key == "rows") {
      manifest.rows = static_cast<RowId>(v);
    } else if (key == "groups") {
      manifest.groups = static_cast<size_t>(v);
    } else {
      return Status::InvalidArgument("unknown manifest key '" + key + "'");
    }
  }
  if (!saw_version) {
    return Status::InvalidArgument("manifest missing format_version");
  }
  if (manifest.format_version != 1) {
    return Status::Unimplemented(
        "unsupported bundle format version " +
        std::to_string(manifest.format_version));
  }
  if (manifest.l < 1) {
    return Status::InvalidArgument("manifest missing a valid l");
  }
  return manifest;
}

Status WritePublicationBundle(const AnatomizedTables& tables, int l,
                              const std::string& dir) {
  // Never ship a publication weaker than it claims to be.
  ANATOMY_RETURN_IF_ERROR(CheckDiversity(tables, l));

  ANATOMY_RETURN_IF_ERROR(
      WriteSchemaFile(tables.qit().schema(), dir + kQitSchemaFile));
  ANATOMY_RETURN_IF_ERROR(
      WriteSchemaFile(tables.st().schema(), dir + kStSchemaFile));
  ANATOMY_RETURN_IF_ERROR(WriteCsvFile(tables.qit(), dir + kQitFile));
  ANATOMY_RETURN_IF_ERROR(WriteCsvFile(tables.st(), dir + kStFile));

  PublicationManifest manifest;
  manifest.l = l;
  manifest.rows = tables.num_rows();
  manifest.groups = tables.num_groups();
  std::ofstream os(dir + kManifestFile);
  if (!os) return Status::NotFound("cannot write manifest in '" + dir + "'");
  os << SerializeManifest(manifest);
  if (!os) return Status::Internal("manifest write failed");
  return Status::OK();
}

StatusOr<LoadedPublication> ReadPublicationBundle(const std::string& dir) {
  ANATOMY_ASSIGN_OR_RETURN(const std::string manifest_text,
                           ReadWholeFile(dir + kManifestFile));
  ANATOMY_ASSIGN_OR_RETURN(PublicationManifest manifest,
                           ParseManifest(manifest_text));

  ANATOMY_ASSIGN_OR_RETURN(SchemaPtr qit_schema,
                           ReadSchemaFile(dir + kQitSchemaFile));
  ANATOMY_ASSIGN_OR_RETURN(SchemaPtr st_schema,
                           ReadSchemaFile(dir + kStSchemaFile));
  ANATOMY_ASSIGN_OR_RETURN(Table qit, ReadCsvFile(qit_schema, dir + kQitFile));
  ANATOMY_ASSIGN_OR_RETURN(Table st, ReadCsvFile(st_schema, dir + kStFile));

  ANATOMY_ASSIGN_OR_RETURN(
      AnatomizedTables tables,
      AnatomizedTables::FromPublishedTables(std::move(qit), std::move(st)));

  if (tables.num_rows() != manifest.rows) {
    return Status::InvalidArgument(
        "manifest claims " + std::to_string(manifest.rows) + " rows, QIT has " +
        std::to_string(tables.num_rows()));
  }
  if (tables.num_groups() != manifest.groups) {
    return Status::InvalidArgument("manifest group count mismatch");
  }
  // The privacy claim is re-verified, not trusted.
  ANATOMY_RETURN_IF_ERROR(CheckDiversity(tables, manifest.l));

  LoadedPublication loaded{std::move(tables), manifest};
  return loaded;
}

}  // namespace anatomy
