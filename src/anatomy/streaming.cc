#include "anatomy/streaming.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/recovery.h"

namespace anatomy {

namespace {

constexpr size_t kInt32Limit = static_cast<size_t>(INT32_MAX);

/// Figure 3 group-creation iterations against the given buffer state: while
/// at least l distinct values are live and at least `emit_threshold` tuples
/// are buffered, draw one random tuple from each of the l largest buckets.
/// Operates entirely on caller-supplied state so Finish() can run the drain
/// on copies and commit only when the whole tail resolves.
void EmitGroups(size_t l, size_t emit_threshold, Rng& rng,
                std::vector<std::vector<RowId>>& buckets, size_t& buffered,
                size_t& non_empty, std::vector<std::vector<RowId>>& groups,
                std::vector<std::vector<Code>>& group_values) {
  while (non_empty >= l && buffered >= emit_threshold) {
    // One iteration of Figure 3's group creation: the l largest buckets.
    std::vector<size_t> order;
    order.reserve(buckets.size());
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (!buckets[b].empty()) order.push_back(b);
    }
    std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(l),
                      order.end(), [&](size_t a, size_t b) {
                        return buckets[a].size() > buckets[b].size();
                      });
    std::vector<RowId> group;
    std::vector<Code> values;
    group.reserve(l);
    values.reserve(l);
    for (size_t k = 0; k < l; ++k) {
      auto& bucket = buckets[order[k]];
      const size_t pick = rng.NextBounded(bucket.size());
      std::swap(bucket[pick], bucket.back());
      group.push_back(bucket.back());
      bucket.pop_back();
      values.push_back(static_cast<Code>(order[k]));
      if (bucket.empty()) --non_empty;
    }
    buffered -= l;
    groups.push_back(std::move(group));
    group_values.push_back(std::move(values));
  }
}

}  // namespace

StreamingAnatomizer::StreamingAnatomizer(
    const StreamingAnatomizerOptions& options, Code sensitive_domain)
    : options_(options), rng_(options.seed) {
  ANATOMY_CHECK(options_.l >= 2);
  ANATOMY_CHECK(sensitive_domain > 0);
  if (options_.emit_threshold == 0) {
    options_.emit_threshold = 4 * static_cast<size_t>(options_.l);
  }
  ANATOMY_CHECK(options_.emit_threshold >= static_cast<size_t>(options_.l));
  buckets_.resize(sensitive_domain);
}

Status StreamingAnatomizer::Add(RowId row, Code sensitive_value) {
  if (finished_) {
    return Status::FailedPrecondition("Add after Finish");
  }
  if (sensitive_value < 0 ||
      static_cast<size_t>(sensitive_value) >= buckets_.size()) {
    return Status::InvalidArgument("sensitive code out of domain");
  }
  auto& bucket = buckets_[sensitive_value];
  if (bucket.empty()) ++non_empty_;
  bucket.push_back(row);
  ++buffered_;
  MaybeEmit(options_.emit_threshold);
  return Status::OK();
}

void StreamingAnatomizer::MaybeEmit(size_t emit_threshold) {
  const size_t before = groups_.size();
  EmitGroups(static_cast<size_t>(options_.l), emit_threshold, rng_, buckets_,
             buffered_, non_empty_, groups_, group_values_);
  for (size_t g = before; g < groups_.size(); ++g) {
    group_value_sets_.emplace_back(group_values_[g].begin(),
                                   group_values_[g].end());
  }
}

StatusOr<std::unique_ptr<RecordFile>> StreamingAnatomizer::FlushWindow(
    Disk* disk, BufferPool* pool) {
  if (finished_) {
    return Status::FailedPrecondition(
        "FlushWindow after Finish (use FlushFinal for the delta window)");
  }
  // The record format is three int32 columns; ids that do not fit are a
  // caller error, never a silent truncation.
  for (size_t g = flushed_groups_; g < groups_.size(); ++g) {
    if (g > kInt32Limit) {
      return Status::InvalidArgument(
          "group id " + std::to_string(g) + " exceeds the int32 record format");
    }
    for (RowId row : groups_[g]) {
      if (static_cast<size_t>(row) > kInt32Limit) {
        return Status::InvalidArgument("row id " + std::to_string(row) +
                                       " exceeds the int32 record format");
      }
    }
  }
  obs::ScopedSpan flush_span("streaming.flush_window", "streaming");
  PipelineGuard guard(disk, pool);
  auto file = std::make_unique<RecordFile>(disk, 3);
  auto write_window = [&]() -> Status {
    RecordWriter writer(pool, file.get());
    std::vector<int32_t> rec(3);
    for (size_t g = flushed_groups_; g < groups_.size(); ++g) {
      for (size_t k = 0; k < groups_[g].size(); ++k) {
        rec[0] = static_cast<int32_t>(g);
        rec[1] = static_cast<int32_t>(groups_[g][k]);
        rec[2] = group_values_[g][k];
        ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
      }
    }
    return pool->FlushAll();
  };
  const Status status = write_window();
  if (!status.ok()) {
    // Reclaim the partial window; the flush cursor stays where it was, so
    // the caller can retry the identical window after the fault clears. The
    // in-memory state (buckets, groups) is untouched — the streamer keeps
    // accepting Add()s.
    guard.Abort();
    return status;
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("streaming.windows_flushed")->Increment();
  registry.GetCounter("streaming.groups_flushed")
      ->Increment(groups_.size() - flushed_groups_);
  flushed_groups_ = groups_.size();
  return file;
}

StatusOr<Partition> StreamingAnatomizer::Finish() {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  obs::ScopedSpan finish_span("streaming.finish", "streaming");
  const size_t l = static_cast<size_t>(options_.l);

  // ---- Plan phase: everything below runs on copies. The members are only
  // written at the commit point, so a failed Finish leaves the streamer
  // exactly as it was — same buffered(), same groups, same rng — and the
  // caller may Add() more tuples and retry.
  Rng rng = rng_;
  std::vector<std::vector<RowId>> buckets = buckets_;
  size_t buffered = buffered_;
  size_t non_empty = non_empty_;
  std::vector<std::vector<RowId>> new_groups;
  std::vector<std::vector<Code>> new_values;

  // Drain the buffer with the batch rule: the threshold drops to l (any l
  // distinct live values make a group), leaving at most l-1 residues under
  // eligibility.
  EmitGroups(l, l, rng, buckets, buffered, non_empty, new_groups, new_values);

  const size_t total_groups = groups_.size() + new_groups.size();
  if (total_groups == 0) {
    return Status::FailedPrecondition(
        "stream ended before any group could be formed");
  }

  std::vector<std::unordered_set<Code>> value_sets = group_value_sets_;
  value_sets.reserve(total_groups);
  for (const auto& values : new_values) {
    value_sets.emplace_back(values.begin(), values.end());
  }

  // Residue placement plan: each leftover tuple joins a group lacking its
  // value (Line 11's S'). Unflushed groups are preferred so groups already
  // checkpointed by FlushWindow stay byte-accurate; only when every unflushed
  // group contains the value does the tuple amend a flushed group, and that
  // amendment is recorded for FlushFinal's delta window. Candidates are
  // collected in ascending group order so the rng draw sees the same sequence
  // as the pre-hash-set linear scan — output stays byte-identical for a
  // fixed seed.
  struct Placement {
    size_t group;
    RowId row;
    Code value;
    bool amends_flushed;
  };
  std::vector<Placement> placements;
  size_t stranded = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const Code value = static_cast<Code>(b);
    for (RowId row : buckets[b]) {
      std::vector<size_t> candidates;
      for (size_t g = flushed_groups_; g < total_groups; ++g) {
        if (!value_sets[g].contains(value)) candidates.push_back(g);
      }
      bool amends_flushed = false;
      if (candidates.empty() && options_.allow_flushed_amendments) {
        for (size_t g = 0; g < flushed_groups_; ++g) {
          if (!value_sets[g].contains(value)) candidates.push_back(g);
        }
        amends_flushed = !candidates.empty();
      }
      if (candidates.empty()) {
        // Keep planning the rest so the error reports the true total of
        // stranded tuples, not just the first one found.
        ++stranded;
        continue;
      }
      const size_t g = candidates[rng.NextBounded(candidates.size())];
      value_sets[g].insert(value);
      placements.push_back({g, row, value, amends_flushed});
    }
  }
  if (stranded > 0) {
    return Status::FailedPrecondition(
        "stream tail not absorbable: " + std::to_string(stranded) + " of " +
        std::to_string(buffered) +
        " residual tuples have a sensitive value present in every " +
        (options_.allow_flushed_amendments
             ? std::string("emitted group (raise emit_threshold or buffer "
                           "longer)")
             : std::string("unflushed group, and amending flushed groups is "
                           "disabled (allow_flushed_amendments)")));
  }

  // ---- Commit phase: nothing below can fail. ----
  rng_ = rng;
  for (size_t i = 0; i < new_groups.size(); ++i) {
    group_value_sets_.emplace_back(new_values[i].begin(), new_values[i].end());
    groups_.push_back(std::move(new_groups[i]));
    group_values_.push_back(std::move(new_values[i]));
  }
  flushed_amendments_.clear();
  for (const Placement& p : placements) {
    groups_[p.group].push_back(p.row);
    group_values_[p.group].push_back(p.value);
    group_value_sets_[p.group].insert(p.value);
    if (p.amends_flushed) {
      flushed_amendments_.push_back(
          {static_cast<GroupId>(p.group), p.row, p.value});
    }
  }
  for (auto& bucket : buckets_) bucket.clear();
  buffered_ = 0;
  non_empty_ = 0;
  finished_ = true;

  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("streaming.finishes")->Increment();
  registry.GetCounter("streaming.flushed_amendments")
      ->Increment(flushed_amendments_.size());

  Partition partition;
  partition.groups = groups_;
  return partition;
}

StatusOr<std::unique_ptr<RecordFile>> StreamingAnatomizer::FlushFinal(
    Disk* disk, BufferPool* pool) {
  if (!finished_) {
    return Status::FailedPrecondition("FlushFinal before successful Finish");
  }
  for (size_t g = flushed_groups_; g < groups_.size(); ++g) {
    if (g > kInt32Limit) {
      return Status::InvalidArgument(
          "group id " + std::to_string(g) + " exceeds the int32 record format");
    }
    for (RowId row : groups_[g]) {
      if (static_cast<size_t>(row) > kInt32Limit) {
        return Status::InvalidArgument("row id " + std::to_string(row) +
                                       " exceeds the int32 record format");
      }
    }
  }
  for (const FlushedAmendment& a : flushed_amendments_) {
    if (static_cast<size_t>(a.group) > kInt32Limit ||
        static_cast<size_t>(a.row) > kInt32Limit) {
      return Status::InvalidArgument(
          "amendment ids exceed the int32 record format");
    }
  }
  obs::ScopedSpan final_span("streaming.flush_final", "streaming");
  PipelineGuard guard(disk, pool);
  auto file = std::make_unique<RecordFile>(disk, 3);
  auto write_final = [&]() -> Status {
    RecordWriter writer(pool, file.get());
    std::vector<int32_t> rec(3);
    // Groups never covered by a FlushWindow checkpoint, in full (including
    // residues Finish placed into them)...
    for (size_t g = flushed_groups_; g < groups_.size(); ++g) {
      for (size_t k = 0; k < groups_[g].size(); ++k) {
        rec[0] = static_cast<int32_t>(g);
        rec[1] = static_cast<int32_t>(groups_[g][k]);
        rec[2] = group_values_[g][k];
        ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
      }
    }
    // ...then the amendment records for flushed groups: replaying every
    // FlushWindow file plus this one reconstructs the partition Finish
    // returned, record for record.
    for (const FlushedAmendment& a : flushed_amendments_) {
      rec[0] = static_cast<int32_t>(a.group);
      rec[1] = static_cast<int32_t>(a.row);
      rec[2] = a.value;
      ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
    }
    return pool->FlushAll();
  };
  const Status status = write_final();
  if (!status.ok()) {
    // Same retry contract as FlushWindow: reclaim the partial file and leave
    // the streamer untouched so the identical delta can be re-flushed.
    guard.Abort();
    return status;
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("streaming.final_flushes")->Increment();
  return file;
}

}  // namespace anatomy
