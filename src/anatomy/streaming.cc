#include "anatomy/streaming.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/recovery.h"

namespace anatomy {

StreamingAnatomizer::StreamingAnatomizer(
    const StreamingAnatomizerOptions& options, Code sensitive_domain)
    : options_(options), rng_(options.seed) {
  ANATOMY_CHECK(options_.l >= 2);
  ANATOMY_CHECK(sensitive_domain > 0);
  if (options_.emit_threshold == 0) {
    options_.emit_threshold = 4 * static_cast<size_t>(options_.l);
  }
  ANATOMY_CHECK(options_.emit_threshold >= static_cast<size_t>(options_.l));
  buckets_.resize(sensitive_domain);
}

Status StreamingAnatomizer::Add(RowId row, Code sensitive_value) {
  if (finished_) {
    return Status::FailedPrecondition("Add after Finish");
  }
  if (sensitive_value < 0 ||
      static_cast<size_t>(sensitive_value) >= buckets_.size()) {
    return Status::InvalidArgument("sensitive code out of domain");
  }
  auto& bucket = buckets_[sensitive_value];
  if (bucket.empty()) ++non_empty_;
  bucket.push_back(row);
  ++buffered_;
  MaybeEmit();
  return Status::OK();
}

void StreamingAnatomizer::MaybeEmit() {
  const size_t l = static_cast<size_t>(options_.l);
  while (non_empty_ >= l && buffered_ >= options_.emit_threshold) {
    // One iteration of Figure 3's group creation: the l largest buckets.
    std::vector<size_t> order;
    order.reserve(buckets_.size());
    for (size_t b = 0; b < buckets_.size(); ++b) {
      if (!buckets_[b].empty()) order.push_back(b);
    }
    std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(l),
                      order.end(), [&](size_t a, size_t b) {
                        return buckets_[a].size() > buckets_[b].size();
                      });
    std::vector<RowId> group;
    std::vector<Code> values;
    group.reserve(l);
    values.reserve(l);
    for (size_t k = 0; k < l; ++k) {
      auto& bucket = buckets_[order[k]];
      const size_t pick = rng_.NextBounded(bucket.size());
      std::swap(bucket[pick], bucket.back());
      group.push_back(bucket.back());
      bucket.pop_back();
      values.push_back(static_cast<Code>(order[k]));
      if (bucket.empty()) --non_empty_;
    }
    buffered_ -= l;
    groups_.push_back(std::move(group));
    group_values_.push_back(std::move(values));
  }
}

StatusOr<std::unique_ptr<RecordFile>> StreamingAnatomizer::FlushWindow(
    Disk* disk, BufferPool* pool) {
  if (finished_) {
    return Status::FailedPrecondition("FlushWindow after Finish");
  }
  obs::ScopedSpan flush_span("streaming.flush_window", "streaming");
  PipelineGuard guard(disk, pool);
  auto file = std::make_unique<RecordFile>(disk, 3);
  auto write_window = [&]() -> Status {
    RecordWriter writer(pool, file.get());
    std::vector<int32_t> rec(3);
    for (size_t g = flushed_groups_; g < groups_.size(); ++g) {
      for (size_t k = 0; k < groups_[g].size(); ++k) {
        rec[0] = static_cast<int32_t>(g);
        rec[1] = static_cast<int32_t>(groups_[g][k]);
        rec[2] = group_values_[g][k];
        ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
      }
    }
    return pool->FlushAll();
  };
  const Status status = write_window();
  if (!status.ok()) {
    // Reclaim the partial window; the flush cursor stays where it was, so
    // the caller can retry the identical window after the fault clears. The
    // in-memory state (buckets, groups) is untouched — the streamer keeps
    // accepting Add()s.
    guard.Abort();
    return status;
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("streaming.windows_flushed")->Increment();
  registry.GetCounter("streaming.groups_flushed")
      ->Increment(groups_.size() - flushed_groups_);
  flushed_groups_ = groups_.size();
  return file;
}

StatusOr<Partition> StreamingAnatomizer::Finish() {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  finished_ = true;
  const size_t l = static_cast<size_t>(options_.l);

  // Drain the buffer with the batch rule (no threshold anymore).
  while (non_empty_ >= l) {
    const size_t saved_threshold = options_.emit_threshold;
    options_.emit_threshold = l;
    MaybeEmit();
    options_.emit_threshold = saved_threshold;
    if (non_empty_ < l) break;
  }

  // Residue placement: each leftover tuple joins a group lacking its value.
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (RowId row : buckets_[b]) {
      std::vector<size_t> candidates;
      for (size_t g = 0; g < groups_.size(); ++g) {
        const auto& values = group_values_[g];
        if (std::find(values.begin(), values.end(), static_cast<Code>(b)) ==
            values.end()) {
          candidates.push_back(g);
        }
      }
      if (candidates.empty()) {
        return Status::FailedPrecondition(
            "stream tail not absorbable: " + std::to_string(buffered_) +
            " buffered tuples include a sensitive value present in every "
            "emitted group (raise emit_threshold or buffer longer)");
      }
      const size_t g = candidates[rng_.NextBounded(candidates.size())];
      groups_[g].push_back(row);
      group_values_[g].push_back(static_cast<Code>(b));
      --buffered_;
    }
    buckets_[b].clear();
  }
  non_empty_ = 0;

  if (groups_.empty()) {
    return Status::FailedPrecondition(
        "stream ended before any group could be formed");
  }
  Partition partition;
  partition.groups = groups_;
  return partition;
}

}  // namespace anatomy
