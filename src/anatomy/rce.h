// Reconstruction error (Section 4): how far the pdf an analyst re-derives
// from the published tables is from the true tuple pdf, in squared L2
// distance (Equations 9, 11, 12), summed over all tuples (RCE, Equation 13).
//
// For anatomized tables the error has a closed form per tuple: if t lies in a
// group QI with sensitive histogram {c(v_1)..c(v_lambda)} and carries v_h,
//   Err_t = (1 - c(v_h)/|QI|)^2 + sum_{h' != h} (c(v_h')/|QI|)^2 .
// Theorem 2 lower-bounds any anatomization's RCE by n(1 - 1/l); Theorem 4
// shows Anatomize achieves it exactly when l | n and within a factor
// 1 + r/(n(l-1)) <= 1 + 1/n otherwise (r = n mod l).

#ifndef ANATOMY_ANATOMY_RCE_H_
#define ANATOMY_ANATOMY_RCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "anatomy/anatomized_tables.h"
#include "table/table.h"

namespace anatomy {

/// Err_t (Equation 12) for a tuple with sensitive value `actual` in a group
/// with the given histogram and size.
double TupleErrAnatomy(const std::vector<std::pair<Code, uint32_t>>& histogram,
                       uint32_t group_size, Code actual);

/// RCE (Equation 13) of a pair of anatomized tables, computed in closed form
/// from the per-group sensitive histograms.
double AnatomyRce(const AnatomizedTables& tables);

/// Theorem 2: the smallest RCE any QIT/ST pair from an l-diverse partition
/// can achieve, n(1 - 1/l).
double RceLowerBound(RowId n, int l);

/// Theorem 4's exact value for Anatomize's output:
/// n(1 - 1/l)(1 + r/(n(l-1))) with r = n mod l.
double AnatomizeRceGuarantee(RowId n, int l);

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_RCE_H_
