// Shard-parallel Anatomize: the first multi-core build path.
//
// Anatomize's bucket structure (Figure 3) decomposes naturally across
// disjoint row shards: the per-group "adversary learns at most 1/l"
// guarantee (Theorem 1) is a per-group property, so the union of l-diverse
// partitions of disjoint row sets is an l-diverse partition of their union.
// The splitter deals each sensitive value's rows cyclically across S shards,
// which keeps every per-shard value count within ceil(c_v / S) — the closest
// a split can get to preserving the eligibility margin (Property 1). Shards
// the rounding still leaves ineligible are merged deterministically into
// their cyclic successor until every surviving shard is eligible (global
// eligibility guarantees termination: the fully merged shard is the input).
//
// Determinism contract (mirrors workload/parallel_runner): shard s runs a
// plain Anatomizer seeded Rng::ForStream(seed, s), shard results are
// concatenated in shard order with group ids prefix-offset, so the output is
// a pure function of (data, seed, S) — byte-identical at ANY thread count.
// With S = 1 the splitter is the identity and the shard seed is the master
// seed itself, so the output is byte-identical to the sequential Anatomizer.
//
// Quality: each shard achieves Theorem 4's bound on its own rows, so the
// merged partition's reconstruction error is within 1 + S(l-1)/n of
// Theorem 2's lower bound n(1 - 1/l) (each shard contributes at most l-1
// residue tuples; see DESIGN.md §9 for the proof sketch).
// bench_sharded_anatomize measures and enforces this bound.

#ifndef ANATOMY_ANATOMY_SHARDED_ANATOMIZER_H_
#define ANATOMY_ANATOMY_SHARDED_ANATOMIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "anatomy/anatomizer.h"
#include "anatomy/external_anatomizer.h"
#include "anatomy/partition.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "table/table.h"

namespace anatomy {

struct ShardedAnatomizerOptions {
  /// Privacy parameter, as in AnatomizerOptions.
  int l = 10;
  /// Master seed; shard s draws from Rng::ForStream(seed, s) (the shard with
  /// S = 1 uses the master seed directly so S = 1 equals the sequential run).
  uint64_t seed = 1;
  /// Requested row shards. Must be >= 1; shards the eligibility-preserving
  /// split cannot keep eligible are merged, so fewer may actually run.
  size_t shards = 1;
  /// Worker threads for the per-shard runs; 0 means hardware concurrency.
  /// Never affects the output, only the wall clock.
  size_t num_threads = 0;
};

/// The eligibility-preserving row split: shard_rows[s] lists the global row
/// ids of shard s in ascending order; shards are pairwise disjoint and cover
/// [0, n). Produced by cyclic dealing per sensitive value, then deterministic
/// merging of ineligible shards.
struct ShardSplit {
  std::vector<std::vector<RowId>> shard_rows;
  /// Shards requested before merging.
  size_t requested = 0;
  /// Ineligible shards folded into their successor by the merge loop.
  size_t merges = 0;
};

/// Splits `sensitive` (codes in [0, domain)) into at most `shards` eligible
/// row shards. Fails if the input itself is not l-eligible, since then no
/// amount of merging yields an eligible shard.
StatusOr<ShardSplit> SplitForSharding(std::span<const Code> sensitive,
                                      Code domain, int l, size_t shards);

struct ShardedAnatomizeResult {
  Partition partition;
  /// Shards that actually ran (after eligibility merging).
  size_t shards_run = 0;
  /// Shards folded away by the eligibility merge.
  size_t merged_shards = 0;
};

/// In-memory shard-parallel Anatomize over the existing ThreadPool.
class ShardedAnatomizer {
 public:
  explicit ShardedAnatomizer(const ShardedAnatomizerOptions& options);

  /// Figure 3 on `microdata`, sharded. Output is byte-identical for a fixed
  /// (seed, shards) at any thread count, and with shards = 1 byte-identical
  /// to Anatomizer::ComputePartition with the same seed.
  StatusOr<ShardedAnatomizeResult> Run(const Microdata& microdata) const;

 private:
  ShardedAnatomizerOptions options_;
};

struct ShardedExternalAnatomizeResult {
  Partition partition;
  /// Algorithm I/O summed across shards (still O(n/b) in total: each shard
  /// is O(n_s / b) on its own disk).
  IoStats io;
  size_t qit_pages = 0;
  size_t st_pages = 0;
  size_t shards_run = 0;
  size_t merged_shards = 0;
  /// Per-shard pool budgets actually used; sums to the configured total.
  std::vector<size_t> shard_pool_pages;
};

/// A per-node published shard deployment: shard s's QIT/ST committed crash-
/// consistently on disks[s], plus the bookkeeping a coordinator needs to
/// stitch the shards back into one logical publication.
struct ShardedPublishResult {
  /// manifests[s]: committed, verified publication of shard s on disks[s].
  std::vector<StorageManifest> manifests;
  /// shard_partitions[s]: shard s's partition in *global* row ids (shard-
  /// local group ids starting at 0 on each shard).
  std::vector<Partition> shard_partitions;
  /// All shards concatenated in shard order — identical to what Run()
  /// returns for the same (data, seed, shards), so a merged view of the
  /// per-node publications equals the single-deployment publication.
  Partition merged;
  ShardSplit split;
  IoStats io;
  IoStats commit_io;
  size_t shards_run = 0;
  size_t merged_shards = 0;
};

/// Shard-parallel external (I/O-counted) Anatomize. Each shard runs the full
/// Theorem 3 pipeline against its own Disk through its own BufferPool; the
/// per-shard pool budgets sum to `total_pool_pages` (the configured memory
/// capacity, e.g. the paper's 50 pages), so parallelism never inflates the
/// memory budget. The external pipeline draws tuples in stream order (no
/// RNG), so the result is deterministic and, with shards = 1, byte-identical
/// to the sequential ExternalAnatomizer.
class ShardedExternalAnatomizer {
 public:
  explicit ShardedExternalAnatomizer(const ShardedAnatomizerOptions& options);

  /// `disks` must provide one Disk per requested shard (extras are unused
  /// when the eligibility merge reduces the shard count); each shard's
  /// pipeline I/O lands on its own disk, so the per-shard IoStats stay
  /// meaningful under parallel execution. `total_pool_pages` is divided
  /// across the shards that run (minimum 8 pages each, like the smallest
  /// pool the tier-1 tests drive the sequential pipeline with).
  StatusOr<ShardedExternalAnatomizeResult> Run(const Microdata& microdata,
                                               std::span<Disk* const> disks,
                                               size_t total_pool_pages) const;

  /// The multi-node deployment path: shard s publishes crash-consistently on
  /// disks[s] through pools[s] (ExternalAnatomizer::RunPublished per shard,
  /// in parallel). All-or-none: if any shard fails, every already-committed
  /// shard publication is discarded before the error returns, so the node
  /// fleet never holds a partially-deployed epoch. `disks` and `pools` are
  /// parallel arrays, one entry per requested shard; unlike Run(), each pool
  /// is caller-owned because in the distributed deployment each node brings
  /// its own (the budget split is the caller's policy, not ours).
  StatusOr<ShardedPublishResult> RunPublished(
      const Microdata& microdata, std::span<Disk* const> disks,
      std::span<BufferPool* const> pools) const;

 private:
  ShardedAnatomizerOptions options_;
};

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_SHARDED_ANATOMIZER_H_
