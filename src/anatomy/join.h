// Natural join QIT |><| ST (Lemma 1, Table 4): the adversary's view of all
// (tuple, sensitive value, count) associations. Each join record combined
// with the group size yields Pr{t[d+1] = v} = c_j(v) / |QI_j| (Equation 2).

#ifndef ANATOMY_ANATOMY_JOIN_H_
#define ANATOMY_ANATOMY_JOIN_H_

#include "anatomy/anatomized_tables.h"
#include "table/table.h"

namespace anatomy {

/// Materializes the natural join on Group-ID. Output schema is
/// (Aqi_1, ..., Aqi_d, Group-ID, As, Count) — d + 3 attributes as in Lemma 1.
/// Rows appear in QIT order, each expanded by its group's ST records in
/// sensitive-code order (Table 4's layout).
Table JoinQitSt(const AnatomizedTables& tables);

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_JOIN_H_
