// The eligibility condition for l-diverse publication (proof of Property 1):
// an l-diverse partition of T exists iff at most n/l tuples share the same
// sensitive value. Neither anatomy nor generalization can beat this bound.

#ifndef ANATOMY_ANATOMY_ELIGIBILITY_H_
#define ANATOMY_ANATOMY_ELIGIBILITY_H_

#include "common/status.h"
#include "table/table.h"

namespace anatomy {

/// OK iff `microdata` admits an l-diverse partition: for every sensitive
/// value v, count(v) * l <= n.
Status CheckEligibility(const Microdata& microdata, int l);

/// The largest l for which `microdata` is eligible: floor(n / max_v count(v)).
/// Returns 0 for an empty table.
int MaxEligibleL(const Microdata& microdata);

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_ELIGIBILITY_H_
