#include "anatomy/partition.h"

#include <algorithm>

#include "common/check.h"

namespace anatomy {

RowId Partition::TotalRows() const {
  RowId total = 0;
  for (const auto& g : groups) total += static_cast<RowId>(g.size());
  return total;
}

std::vector<GroupId> Partition::GroupOfRow(RowId n) const {
  std::vector<GroupId> owner(n, static_cast<GroupId>(-1));
  for (GroupId g = 0; g < groups.size(); ++g) {
    for (RowId r : groups[g]) {
      ANATOMY_CHECK(r < n);
      ANATOMY_CHECK_MSG(owner[r] == static_cast<GroupId>(-1),
                        "row assigned to two groups");
      owner[r] = g;
    }
  }
  for (RowId r = 0; r < n; ++r) {
    ANATOMY_CHECK_MSG(owner[r] != static_cast<GroupId>(-1),
                      "row missing from partition");
  }
  return owner;
}

Status Partition::ValidateCover(RowId n) const {
  std::vector<bool> seen(n, false);
  for (const auto& group : groups) {
    if (group.empty()) return Status::InvalidArgument("empty QI-group");
    for (RowId r : group) {
      if (r >= n) return Status::OutOfRange("row id beyond table");
      if (seen[r]) {
        return Status::InvalidArgument("row " + std::to_string(r) +
                                       " appears in two groups");
      }
      seen[r] = true;
    }
  }
  for (RowId r = 0; r < n; ++r) {
    if (!seen[r]) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " missing from partition");
    }
  }
  return Status::OK();
}

Status Partition::ValidateLDiverse(const Microdata& microdata, int l) const {
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  for (GroupId g = 0; g < groups.size(); ++g) {
    const auto hist = GroupSensitiveHistogram(microdata, groups[g]);
    uint32_t max_count = 0;
    for (const auto& [code, count] : hist) max_count = std::max(max_count, count);
    // Inequality 1: cj(v)/|QIj| <= 1/l  <=>  cj(v) * l <= |QIj|.
    if (static_cast<uint64_t>(max_count) * l > groups[g].size()) {
      return Status::FailedPrecondition(
          "group " + std::to_string(g + 1) + " violates " + std::to_string(l) +
          "-diversity: max sensitive count " + std::to_string(max_count) +
          " of " + std::to_string(groups[g].size()) + " tuples");
    }
  }
  return Status::OK();
}

int Partition::MaxDiversity(const Microdata& microdata) const {
  int best = 0;
  bool first = true;
  for (const auto& group : groups) {
    if (group.empty()) return 0;
    const auto hist = GroupSensitiveHistogram(microdata, group);
    uint32_t max_count = 0;
    for (const auto& [code, count] : hist) max_count = std::max(max_count, count);
    const int group_l = static_cast<int>(group.size() / max_count);
    best = first ? group_l : std::min(best, group_l);
    first = false;
  }
  return best;
}

std::vector<std::pair<Code, uint32_t>> GroupSensitiveHistogram(
    const Microdata& microdata, const std::vector<RowId>& group) {
  std::vector<Code> values;
  values.reserve(group.size());
  for (RowId r : group) values.push_back(microdata.sensitive_value(r));
  std::sort(values.begin(), values.end());
  std::vector<std::pair<Code, uint32_t>> hist;
  for (size_t i = 0; i < values.size();) {
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    hist.emplace_back(values[i], static_cast<uint32_t>(j - i));
    i = j;
  }
  return hist;
}

}  // namespace anatomy
