// Publication bundles: the on-disk directory format a publisher ships and an
// analyst loads.
//
//   <dir>/
//     qit_schema.txt   table/schema_io.h format (QI attributes + Group-ID)
//     st_schema.txt    (Group-ID, As, Count)
//     qit.csv          the quasi-identifier table
//     st.csv           the sensitive table
//     manifest.txt     key=value metadata (format version, l, n, groups)
//
// Writing a bundle records the publisher's claimed l; loading re-validates
// everything: schema/CSV consistency, QIT-ST cross checks (via
// AnatomizedTables::FromPublishedTables), and that the claimed l-diversity
// actually holds — a loaded bundle can be trusted as much as a freshly
// anatomized one.

#ifndef ANATOMY_ANATOMY_BUNDLE_H_
#define ANATOMY_ANATOMY_BUNDLE_H_

#include <string>

#include "anatomy/anatomized_tables.h"
#include "common/status.h"

namespace anatomy {

struct PublicationManifest {
  int format_version = 1;
  int l = 0;
  RowId rows = 0;
  size_t groups = 0;
};

struct LoadedPublication {
  AnatomizedTables tables;
  PublicationManifest manifest;
};

/// Writes the bundle into `dir` (must exist). `l` is the diversity the
/// publisher claims; it is verified before anything is written.
Status WritePublicationBundle(const AnatomizedTables& tables, int l,
                              const std::string& dir);

/// Loads and fully re-validates a bundle.
StatusOr<LoadedPublication> ReadPublicationBundle(const std::string& dir);

/// Parses/serializes the manifest (exposed for tests).
std::string SerializeManifest(const PublicationManifest& manifest);
StatusOr<PublicationManifest> ParseManifest(const std::string& text);

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_BUNDLE_H_
