#include "anatomy/external_join.h"

#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/external_sort.h"
#include "storage/recovery.h"

namespace anatomy {

namespace {

StatusOr<ExternalJoinResult> JoinPipeline(const AnatomizedTables& tables,
                                          Disk* disk, BufferPool* pool) {
  const Table& qit = tables.qit();
  const Table& st = tables.st();
  const size_t d = qit.num_columns() - 1;
  const size_t qit_fields = d + 1;

  // ---- Stage 0 (uncounted): materialize the publication on disk. ----
  RecordFile qit_file(disk, qit_fields);
  {
    RecordWriter writer(pool, &qit_file);
    std::vector<int32_t> rec(qit_fields);
    for (RowId r = 0; r < qit.num_rows(); ++r) {
      for (size_t c = 0; c < qit_fields; ++c) rec[c] = qit.at(r, c);
      ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
    }
  }
  RecordFile st_file(disk, 3);
  {
    RecordWriter writer(pool, &st_file);
    std::vector<int32_t> rec(3);
    for (RowId r = 0; r < st.num_rows(); ++r) {
      for (size_t c = 0; c < 3; ++c) rec[c] = st.at(r, c);
      ANATOMY_RETURN_IF_ERROR(writer.Append(rec));
    }
  }
  ANATOMY_RETURN_IF_ERROR(pool->FlushAll());
  disk->ResetStats();

  obs::ScopedSpan join_span("external_join.sort_merge", "external_join");
  // ---- Sort both sides by Group-ID. The ST is written grouped already,
  // but a robust implementation must not rely on that. ----
  SortSpec qit_spec;
  qit_spec.key_fields = {d};  // group id is the last QIT field
  ANATOMY_ASSIGN_OR_RETURN(auto sorted_qit,
                           ExternalSort(&qit_file, qit_spec, pool));
  SortSpec st_spec;
  st_spec.key_fields = {0, 1};
  ANATOMY_ASSIGN_OR_RETURN(auto sorted_st,
                           ExternalSort(&st_file, st_spec, pool));

  // ---- Merge join: for each QIT tuple, emit one record per ST record of
  // its group. Groups are small (O(l) ST records), so the current group's
  // ST block is buffered in memory. ----
  ExternalJoinResult result;
  result.joined = std::make_unique<RecordFile>(disk, d + 3);
  RecordWriter writer(pool, result.joined.get());

  RecordReader qit_reader(pool, sorted_qit.get());
  RecordReader st_reader(pool, sorted_st.get());
  std::vector<int32_t> qit_rec(qit_fields);
  std::vector<int32_t> st_rec(3);
  std::vector<int32_t> out_rec(d + 3);

  bool st_has = false;
  ANATOMY_ASSIGN_OR_RETURN(st_has, st_reader.Next(st_rec));
  int32_t block_group = -1;
  std::vector<std::pair<int32_t, int32_t>> block;  // (sensitive, count)

  auto load_block = [&](int32_t group) -> Status {
    block.clear();
    block_group = group;
    while (st_has && st_rec[0] < group) {
      ANATOMY_ASSIGN_OR_RETURN(st_has, st_reader.Next(st_rec));
    }
    while (st_has && st_rec[0] == group) {
      block.emplace_back(st_rec[1], st_rec[2]);
      ANATOMY_ASSIGN_OR_RETURN(st_has, st_reader.Next(st_rec));
    }
    return Status::OK();
  };

  for (;;) {
    ANATOMY_ASSIGN_OR_RETURN(bool more, qit_reader.Next(qit_rec));
    if (!more) break;
    const int32_t group = qit_rec[d];
    if (group != block_group) {
      ANATOMY_RETURN_IF_ERROR(load_block(group));
    }
    for (const auto& [value, count] : block) {
      std::copy(qit_rec.begin(), qit_rec.end(), out_rec.begin());
      out_rec[d + 1] = value;
      out_rec[d + 2] = count;
      ANATOMY_RETURN_IF_ERROR(writer.Append(out_rec));
      ++result.records;
    }
  }
  ANATOMY_RETURN_IF_ERROR(pool->FlushAll());
  ANATOMY_RETURN_IF_ERROR(sorted_qit->FreeAll(pool));
  ANATOMY_RETURN_IF_ERROR(sorted_st->FreeAll(pool));
  result.io = disk->stats();
  join_span.End();

  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("external_join.runs")->Increment();
  registry.GetCounter("external_join.io.reads")->Increment(result.io.reads);
  registry.GetCounter("external_join.io.writes")->Increment(result.io.writes);
  return result;
}

}  // namespace

StatusOr<ExternalJoinResult> ExternalJoinQitSt(const AnatomizedTables& tables,
                                               Disk* disk, BufferPool* pool) {
  PipelineGuard guard(disk, pool);
  auto result = JoinPipeline(tables, disk, pool);
  if (!result.ok()) {
    guard.Abort();
    return result.status();
  }
  if (pool->pinned_frames() != 0) {
    guard.Abort();
    return Status::Internal("join finished with " +
                            std::to_string(pool->pinned_frames()) +
                            " frames still pinned");
  }
  return result;
}

}  // namespace anatomy
