// The Anatomize algorithm (Figure 3 of the paper), in-memory version.
//
// Given microdata T and parameter l, computes an l-diverse partition:
//   1. Hash tuples into one bucket per sensitive value (Line 2).
//   2. Group-creation (Lines 3-8): while at least l buckets are non-empty,
//      form a group from one random tuple of each of the l largest buckets.
//   3. Residue-assignment (Lines 9-12): each leftover tuple (at most l-1 of
//      them, one per bucket — Property 1) joins a random group that does not
//      yet contain its sensitive value (non-empty by Property 2).
//
// The resulting partition has groups of l or more tuples, all with distinct
// sensitive values (Property 3), and its reconstruction error is within a
// factor 1 + 1/n of the theoretical lower bound (Theorem 4).

#ifndef ANATOMY_ANATOMY_ANATOMIZER_H_
#define ANATOMY_ANATOMY_ANATOMIZER_H_

#include <cstdint>
#include <span>

#include "anatomy/partition.h"
#include "common/rng.h"
#include "common/status.h"
#include "table/table.h"

namespace anatomy {

struct AnatomizerOptions {
  /// Privacy parameter: an adversary infers any individual's sensitive value
  /// with probability at most 1/l (Theorem 1).
  int l = 10;
  /// Seed for the random tuple draws (Line 7) and residue placement (Line 12).
  uint64_t seed = 1;
};

/// How group creation selects buckets each iteration; kLargestFirst is the
/// paper's algorithm. kRoundRobin is an intentionally naive ablation that
/// cycles through buckets regardless of size — it can strand more than l-1
/// residues and fail on eligible inputs (see bench_rce_quality).
enum class BucketPolicy {
  kLargestFirst,
  kRoundRobin,
};

class Anatomizer {
 public:
  explicit Anatomizer(const AnatomizerOptions& options);

  /// Runs Figure 3 on `microdata`. Fails with FailedPrecondition if the
  /// table is not l-eligible (footnote 3: no l-diverse partition exists).
  StatusOr<Partition> ComputePartition(const Microdata& microdata) const;

  /// Ablation entry point: same pipeline with a different bucket-selection
  /// policy. With kRoundRobin, may fail even on eligible inputs.
  StatusOr<Partition> ComputePartitionWithPolicy(const Microdata& microdata,
                                                 BucketPolicy policy) const;

  /// The core of Figure 3 over a bare sensitive column: `sensitive[r]` is the
  /// sensitive code of row r, codes are in [0, domain). Row r of the returned
  /// partition is index r of `sensitive`. This is the exact code path the
  /// Microdata overloads run (they only add validation), so the output is
  /// byte-identical for a fixed seed. The sharded anatomizer uses it to run
  /// per-shard instances without materializing per-shard Microdata copies.
  /// Fails with FailedPrecondition if the codes are not l-eligible.
  StatusOr<Partition> ComputePartitionFromCodes(std::span<const Code> sensitive,
                                                Code domain,
                                                BucketPolicy policy) const;

 private:
  AnatomizerOptions options_;
};

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_ANATOMIZER_H_
