#include "anatomy/anatomized_tables.h"

#include <algorithm>

#include "common/check.h"

namespace anatomy {

StatusOr<AnatomizedTables> AnatomizedTables::Build(const Microdata& microdata,
                                                   const Partition& partition) {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  ANATOMY_RETURN_IF_ERROR(partition.ValidateCover(microdata.n()));

  AnatomizedTables out;
  const size_t d = microdata.d();
  const size_t m = partition.num_groups();

  out.group_of_row_ = partition.GroupOfRow(microdata.n());
  out.group_sizes_.resize(m);
  out.group_histograms_.resize(m);
  for (GroupId g = 0; g < m; ++g) {
    out.group_sizes_[g] = static_cast<uint32_t>(partition.groups[g].size());
    out.group_histograms_[g] =
        GroupSensitiveHistogram(microdata, partition.groups[g]);
  }

  // --- QIT schema: the QI attributes plus Group-ID (Definition 3). ---
  std::vector<AttributeDef> qit_defs;
  qit_defs.reserve(d + 1);
  for (size_t i = 0; i < d; ++i) qit_defs.push_back(microdata.qi_attribute(i));
  AttributeDef group_def = MakeNumerical(
      "Group-ID", static_cast<Code>(m), /*base=*/1);  // display 1-based
  qit_defs.push_back(group_def);
  out.qit_ = Table(std::make_shared<Schema>(std::move(qit_defs)));
  out.qit_.Reserve(microdata.n());
  std::vector<Code> row(d + 1);
  for (RowId r = 0; r < microdata.n(); ++r) {
    for (size_t i = 0; i < d; ++i) row[i] = microdata.qi_value(r, i);
    row[d] = static_cast<Code>(out.group_of_row_[r]);
    out.qit_.AppendRow(row);
  }

  // --- ST schema: (Group-ID, As, Count). ---
  std::vector<AttributeDef> st_defs;
  st_defs.push_back(group_def);
  st_defs.push_back(microdata.sensitive_attribute());
  st_defs.push_back(MakeNumerical(
      "Count", static_cast<Code>(microdata.n()) + 1));
  out.st_ = Table(std::make_shared<Schema>(std::move(st_defs)));
  std::vector<Code> record(3);
  for (GroupId g = 0; g < m; ++g) {
    for (const auto& [value, count] : out.group_histograms_[g]) {
      record[0] = static_cast<Code>(g);
      record[1] = value;
      record[2] = static_cast<Code>(count);
      out.st_.AppendRow(record);
    }
  }
  return out;
}

StatusOr<AnatomizedTables> AnatomizedTables::FromPublishedTables(Table qit,
                                                                 Table st) {
  if (qit.num_columns() < 2) {
    return Status::InvalidArgument("QIT must have QI columns plus Group-ID");
  }
  if (st.num_columns() != 3) {
    return Status::InvalidArgument("ST must be (Group-ID, As, Count)");
  }
  const size_t d = qit.num_columns() - 1;
  if (qit.schema().attribute(d).name != "Group-ID" ||
      st.schema().attribute(0).name != "Group-ID") {
    return Status::InvalidArgument("Group-ID columns not where expected");
  }
  const Code m_qit = qit.schema().attribute(d).domain_size;

  AnatomizedTables out;
  out.group_sizes_.assign(static_cast<size_t>(m_qit), 0);
  out.group_of_row_.resize(qit.num_rows());
  for (RowId r = 0; r < qit.num_rows(); ++r) {
    const Code g = qit.at(r, d);
    out.group_of_row_[r] = static_cast<GroupId>(g);
    ++out.group_sizes_[static_cast<size_t>(g)];
  }
  for (size_t g = 0; g < out.group_sizes_.size(); ++g) {
    if (out.group_sizes_[g] == 0) {
      return Status::InvalidArgument("group " + std::to_string(g + 1) +
                                     " has no QIT tuples");
    }
  }

  out.group_histograms_.resize(out.group_sizes_.size());
  std::vector<uint64_t> st_totals(out.group_sizes_.size(), 0);
  for (RowId r = 0; r < st.num_rows(); ++r) {
    const size_t g = static_cast<size_t>(st.at(r, 0));
    if (g >= out.group_histograms_.size()) {
      return Status::InvalidArgument("ST references unknown group");
    }
    const Code value = st.at(r, 1);
    const Code count = st.at(r, 2);
    if (count <= 0) {
      return Status::InvalidArgument("non-positive ST count");
    }
    out.group_histograms_[g].emplace_back(value,
                                          static_cast<uint32_t>(count));
    st_totals[g] += static_cast<uint64_t>(count);
  }
  for (size_t g = 0; g < out.group_sizes_.size(); ++g) {
    if (st_totals[g] != out.group_sizes_[g]) {
      return Status::InvalidArgument(
          "group " + std::to_string(g + 1) + ": ST counts sum to " +
          std::to_string(st_totals[g]) + " but the QIT has " +
          std::to_string(out.group_sizes_[g]) + " tuples");
    }
    auto& hist = out.group_histograms_[g];
    std::sort(hist.begin(), hist.end());
    for (size_t i = 1; i < hist.size(); ++i) {
      if (hist[i].first == hist[i - 1].first) {
        return Status::InvalidArgument("duplicate ST record for one value");
      }
    }
  }
  out.qit_ = std::move(qit);
  out.st_ = std::move(st);
  return out;
}

uint32_t AnatomizedTables::GroupCount(GroupId g, Code v) const {
  const auto& hist = group_histograms_[g];
  auto it = std::lower_bound(
      hist.begin(), hist.end(), v,
      [](const std::pair<Code, uint32_t>& e, Code v) { return e.first < v; });
  if (it != hist.end() && it->first == v) return it->second;
  return 0;
}

size_t AnatomizedTables::TotalStRecords() const {
  size_t total = 0;
  for (const auto& hist : group_histograms_) total += hist.size();
  return total;
}

}  // namespace anatomy
