// External natural join QIT |><| ST (Lemma 1) on the simulated disk.
//
// The adversary's reconstruction view (Table 4) over publications too large
// for memory: both files are sorted by Group-ID with the external merge sort
// and merge-joined in one pass, all under the buffer-pool budget and with
// counted I/O. Record layouts:
//   QIT file : [qi_1 .. qi_d, group_id]       (d + 1 fields)
//   ST file  : [group_id, sensitive, count]   (3 fields)
//   join file: [qi_1 .. qi_d, group_id, sensitive, count]  (d + 3 fields)

#ifndef ANATOMY_ANATOMY_EXTERNAL_JOIN_H_
#define ANATOMY_ANATOMY_EXTERNAL_JOIN_H_

#include <memory>

#include "anatomy/anatomized_tables.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"
#include "storage/page_file.h"

namespace anatomy {

struct ExternalJoinResult {
  /// The join output (left on disk for the caller; free with FreeAll).
  std::unique_ptr<RecordFile> joined;
  /// Number of join records produced (= sum over QIT tuples of their group's
  /// distinct sensitive values).
  uint64_t records = 0;
  /// I/O attributable to the join (file loading excluded).
  IoStats io;
};

/// Materializes `tables` as QIT/ST record files on `disk` (uncounted, like a
/// pre-existing publication), then computes the sort-merge join through
/// `pool`. The QIT is shuffled to disk in row order (which for published
/// tables is arbitrary), so the sort phase does real work. On failure every
/// page the join allocated is reclaimed and the pool is emptied.
StatusOr<ExternalJoinResult> ExternalJoinQitSt(const AnatomizedTables& tables,
                                               Disk* disk, BufferPool* pool);

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_EXTERNAL_JOIN_H_
