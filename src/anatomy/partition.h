// Partitions of a microdata table into QI-groups (Definition 1) and the
// l-diversity predicate on them (Definition 2).

#ifndef ANATOMY_ANATOMY_PARTITION_H_
#define ANATOMY_ANATOMY_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace anatomy {

/// Group index within a partition (0-based internally; the paper's Group-ID
/// is this + 1 when displayed).
using GroupId = uint32_t;

/// A partition of rows into disjoint QI-groups covering the whole table.
struct Partition {
  std::vector<std::vector<RowId>> groups;

  size_t num_groups() const { return groups.size(); }

  /// Total number of rows across groups.
  RowId TotalRows() const;

  /// Inverse mapping: group of each row in [0, n). CHECKs that rows are in
  /// range and appear exactly once.
  std::vector<GroupId> GroupOfRow(RowId n) const;

  /// Verifies Definition 1 against a table of `n` rows: every row in exactly
  /// one group, no empty groups.
  Status ValidateCover(RowId n) const;

  /// Verifies Definition 2: in each group, the most frequent sensitive value
  /// occurs in at most 1/l of the tuples (Inequality 1).
  Status ValidateLDiverse(const Microdata& microdata, int l) const;

  /// The largest l for which this partition is l-diverse (0 if some group is
  /// empty). Definition 2 with the inequality tight: l = min_j floor(|QIj| /
  /// max_v cj(v)).
  int MaxDiversity(const Microdata& microdata) const;
};

/// Per-group histogram of sensitive values, sorted by code. The pair is
/// (sensitive code, count).
std::vector<std::pair<Code, uint32_t>> GroupSensitiveHistogram(
    const Microdata& microdata, const std::vector<RowId>& group);

}  // namespace anatomy

#endif  // ANATOMY_ANATOMY_PARTITION_H_
