#include "anatomy/join.h"

namespace anatomy {

Table JoinQitSt(const AnatomizedTables& tables) {
  const Table& qit = tables.qit();
  const size_t d = qit.num_columns() - 1;  // last column is Group-ID

  std::vector<AttributeDef> defs;
  defs.reserve(d + 3);
  for (size_t c = 0; c < qit.num_columns(); ++c) {
    defs.push_back(qit.schema().attribute(c));
  }
  defs.push_back(tables.st().schema().attribute(1));  // As
  defs.push_back(tables.st().schema().attribute(2));  // Count
  Table joined(std::make_shared<Schema>(std::move(defs)));

  std::vector<Code> row(d + 3);
  for (RowId r = 0; r < qit.num_rows(); ++r) {
    for (size_t c = 0; c <= d; ++c) row[c] = qit.at(r, c);
    const GroupId g = static_cast<GroupId>(qit.at(r, d));
    for (const auto& [value, count] : tables.group_histogram(g)) {
      row[d + 1] = value;
      row[d + 2] = static_cast<Code>(count);
      joined.AppendRow(row);
    }
  }
  return joined;
}

}  // namespace anatomy
