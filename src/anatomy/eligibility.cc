#include "anatomy/eligibility.h"

#include "table/stats.h"

namespace anatomy {

Status CheckEligibility(const Microdata& microdata, int l) {
  if (l < 2) {
    return Status::InvalidArgument("l must be >= 2 for meaningful diversity");
  }
  const uint64_t n = microdata.n();
  const uint64_t max_count =
      MaxFrequency(microdata.table, microdata.sensitive_column);
  if (max_count * static_cast<uint64_t>(l) > n) {
    return Status::FailedPrecondition(
        "not " + std::to_string(l) + "-eligible: a sensitive value occurs " +
        std::to_string(max_count) + " times in " + std::to_string(n) +
        " tuples (limit " + std::to_string(n / l) + ")");
  }
  return Status::OK();
}

int MaxEligibleL(const Microdata& microdata) {
  const uint32_t max_count =
      MaxFrequency(microdata.table, microdata.sensitive_column);
  if (max_count == 0) return 0;
  return static_cast<int>(microdata.n() / max_count);
}

}  // namespace anatomy
