#include "data/dataset.h"

#include "data/census.h"

namespace anatomy {

StatusOr<ExperimentDataset> MakeExperimentDataset(const Table& census,
                                                  SensitiveFamily family,
                                                  int d) {
  if (d < 1 || d > static_cast<int>(kCensusMaxQi)) {
    return Status::InvalidArgument("d must be in [1, 7], got " +
                                   std::to_string(d));
  }
  if (census.num_columns() != kCensusNumColumns) {
    return Status::InvalidArgument("expected the 9-column CENSUS table");
  }
  const size_t sensitive_col =
      family == SensitiveFamily::kOccupation ? kOccupation : kSalaryClass;

  std::vector<size_t> projection;
  projection.reserve(d + 1);
  for (int i = 0; i < d; ++i) projection.push_back(i);
  projection.push_back(sensitive_col);

  ExperimentDataset out;
  out.microdata.table = census.ProjectColumns(projection);
  out.microdata.qi_columns.resize(d);
  for (int i = 0; i < d; ++i) out.microdata.qi_columns[i] = i;
  out.microdata.sensitive_column = d;
  ANATOMY_RETURN_IF_ERROR(out.microdata.Validate());

  const TaxonomySet all = CensusTaxonomies();
  for (size_t col : projection) out.taxonomies.Add(all.at(col));

  out.name = (family == SensitiveFamily::kOccupation ? "OCC-" : "SAL-") +
             std::to_string(d);
  return out;
}

StatusOr<ExperimentDataset> SampleDataset(const ExperimentDataset& dataset,
                                          RowId n, Rng& rng) {
  ExperimentDataset out;
  ANATOMY_ASSIGN_OR_RETURN(out.microdata.table,
                           dataset.microdata.table.SampleRows(n, rng));
  out.microdata.qi_columns = dataset.microdata.qi_columns;
  out.microdata.sensitive_column = dataset.microdata.sensitive_column;
  out.taxonomies = dataset.taxonomies;
  out.name = dataset.name;
  return out;
}

}  // namespace anatomy
