// Synthetic CENSUS generator.
//
// Substitutes for the IPUMS extract used in the paper (500k American adults).
// The generator draws each person from a latent socioeconomic profile and
// fills the 9 attributes of data/census.h with correlated conditionals:
//
//   profile z ---> Education, Work-class, Occupation
//   Age       ---> Marital, Salary-class
//   Country   ---> Race
//   Education, Occupation, Work-class, Age ---> Salary-class
//
// The correlations matter: the paper's accuracy gap between anatomy and
// generalization exists precisely because real microdata is far from uniform
// inside generalized cells. tests/data_test.cc verifies nonzero mutual
// information along each arrow and l-diversity eligibility of both sensitive
// attributes at the paper's l = 10.

#ifndef ANATOMY_DATA_CENSUS_GENERATOR_H_
#define ANATOMY_DATA_CENSUS_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "table/table.h"

namespace anatomy {

struct CensusGeneratorOptions {
  uint64_t seed = 42;
  RowId num_rows = 500000;  // The paper's full cardinality.
};

class CensusGenerator {
 public:
  explicit CensusGenerator(const CensusGeneratorOptions& options);

  /// Generates the full 9-column CENSUS table. Deterministic in the seed.
  Table Generate();

  /// Number of latent profiles (exposed for tests).
  static constexpr int kNumProfiles = 8;

 private:
  struct Person {
    int profile;
    Code age, gender, education, marital, race, work_class, country;
    Code occupation, salary;
  };

  Person SamplePerson(Rng& rng);

  int SampleProfile(Rng& rng);
  Code SampleAge(int profile, Rng& rng);
  Code SampleGender(int profile, Rng& rng);
  Code SampleEducation(int profile, Rng& rng);
  Code SampleMarital(Code age, Rng& rng);
  Code SampleCountry(Rng& rng);
  Code SampleRace(Code country, Rng& rng);
  Code SampleWorkClass(int profile, Rng& rng);
  Code SampleOccupation(int profile, Code education, Rng& rng);
  Code SampleSalary(Code age, Code education, Code work_class, Code occupation,
                    Rng& rng);

  CensusGeneratorOptions options_;
  /// rank of each occupation on the pay scale (a fixed permutation of 0..49).
  std::vector<int> occupation_pay_rank_;
};

/// Convenience wrapper: generate n rows with the given seed.
Table GenerateCensus(RowId num_rows, uint64_t seed = 42);

}  // namespace anatomy

#endif  // ANATOMY_DATA_CENSUS_GENERATOR_H_
