// The CENSUS relation of the paper's experiments (Section 6, Table 6) and the
// running example of its introduction (Tables 1-5).
//
// The real dataset is 500k American adults from ipums.org, which we cannot
// ship; data/census_generator.h synthesizes a stand-in with this exact schema
// (attribute inventory, domain sizes, generalization methods) and correlated
// value distributions. See DESIGN.md "Substitutions".

#ifndef ANATOMY_DATA_CENSUS_H_
#define ANATOMY_DATA_CENSUS_H_

#include "table/schema.h"
#include "table/table.h"
#include "taxonomy/taxonomy.h"

namespace anatomy {

/// Column order matches Table 6; OCC-d / SAL-d use the first d as QIs.
enum CensusColumn : size_t {
  kAge = 0,        // 78 distinct values (ages 15..92), free interval
  kGender = 1,     // 2, taxonomy tree (2)
  kEducation = 2,  // 17, free interval
  kMarital = 3,    // 6, taxonomy tree (3)
  kRace = 4,       // 9, taxonomy tree (2)
  kWorkClass = 5,  // 10, taxonomy tree (4)
  kCountry = 6,    // 83, taxonomy tree (3)
  kOccupation = 7,   // 50, sensitive in OCC-d
  kSalaryClass = 8,  // 50, sensitive in SAL-d
};

inline constexpr size_t kCensusNumColumns = 9;
inline constexpr size_t kCensusMaxQi = 7;

/// The 9-attribute CENSUS schema with the domain sizes of Table 6.
SchemaPtr CensusSchema();

/// Per-attribute generalization constraints from the last column of Table 6
/// ("free interval" or "taxonomy tree (x)"); indexed by CensusColumn. The two
/// sensitive attributes get Free placeholders (generalization never touches
/// them — Definition 4 publishes sensitive values exactly).
TaxonomySet CensusTaxonomies();

/// The 8-tuple hospital microdata of Table 1 (Age, Sex, Zipcode QIs; Disease
/// sensitive), used by the quickstart example and the unit tests that check
/// the paper's worked numbers.
Microdata HospitalExample();

/// The voter registration list of Table 5 (Name, Age, Sex, Zipcode): the
/// external database of the Section 3.3 attack analysis. Row 3 (Emily) is not
/// part of the microdata.
Table VoterRegistrationList();

}  // namespace anatomy

#endif  // ANATOMY_DATA_CENSUS_H_
