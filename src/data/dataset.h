// Derivation of the paper's experiment datasets from the CENSUS table:
// OCC-d and SAL-d (Section 6) take the first d attributes of Table 6 as the
// quasi-identifier and Occupation or Salary-class as the sensitive attribute.

#ifndef ANATOMY_DATA_DATASET_H_
#define ANATOMY_DATA_DATASET_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "table/table.h"
#include "taxonomy/taxonomy.h"

namespace anatomy {

enum class SensitiveFamily {
  kOccupation,   // OCC-d
  kSalaryClass,  // SAL-d
};

/// A ready-to-run experiment dataset: projected microdata (columns 0..d-1 are
/// the QIs, column d is the sensitive attribute) plus the matching
/// generalization constraints for the QI columns.
struct ExperimentDataset {
  Microdata microdata;
  /// One taxonomy per column of microdata.table (QIs first, then a Free
  /// placeholder for the sensitive attribute).
  TaxonomySet taxonomies;
  std::string name;  // "OCC-5", "SAL-3", ...
};

/// Builds OCC-d or SAL-d from a generated CENSUS table. d must be in [1, 7].
StatusOr<ExperimentDataset> MakeExperimentDataset(const Table& census,
                                                  SensitiveFamily family,
                                                  int d);

/// Uniformly samples `n` rows of `dataset` (the paper's cardinality knob,
/// Figure 7/9); taxonomies and name carry over.
StatusOr<ExperimentDataset> SampleDataset(const ExperimentDataset& dataset,
                                          RowId n, Rng& rng);

}  // namespace anatomy

#endif  // ANATOMY_DATA_DATASET_H_
