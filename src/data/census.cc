#include "data/census.h"

#include "common/check.h"

namespace anatomy {

namespace {

std::vector<std::string> NumberedLabels(const std::string& prefix, int n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (int i = 0; i < n; ++i) labels.push_back(prefix + std::to_string(i));
  return labels;
}

}  // namespace

SchemaPtr CensusSchema() {
  std::vector<AttributeDef> defs;
  defs.reserve(kCensusNumColumns);
  // Ages 15..92: 78 distinct values (Table 6), adults only as in IPUMS.
  defs.push_back(MakeNumerical("Age", 78, /*base=*/15));
  defs.push_back(MakeLabeled("Gender", {"Female", "Male"}));
  defs.push_back(MakeNumerical("Education", 17, /*base=*/0));
  defs.push_back(MakeLabeled("Marital", {"never-married", "married",
                                         "separated", "divorced", "widowed",
                                         "spouse-absent"}));
  defs.push_back(MakeCategorical("Race", 9));
  defs.push_back(MakeCategorical("Work-class", 10));
  defs.push_back(MakeCategorical("Country", 83));
  defs.push_back(MakeLabeled("Occupation", NumberedLabels("occ-", 50)));
  defs.push_back(MakeLabeled("Salary-class", NumberedLabels("sal-", 50)));
  return std::make_shared<Schema>(std::move(defs));
}

TaxonomySet CensusTaxonomies() {
  SchemaPtr schema = CensusSchema();
  auto balanced = [&](size_t col, int height) {
    auto t = Taxonomy::BuildBalanced(schema->attribute(col).domain_size, height);
    ANATOMY_CHECK_OK(t.status());
    return std::move(t).value();
  };
  TaxonomySet set;
  set.Add(Taxonomy::Free(schema->attribute(kAge).domain_size));  // free interval
  set.Add(balanced(kGender, 2));
  set.Add(Taxonomy::Free(schema->attribute(kEducation).domain_size));
  set.Add(balanced(kMarital, 3));
  set.Add(balanced(kRace, 2));
  set.Add(balanced(kWorkClass, 4));
  set.Add(balanced(kCountry, 3));
  set.Add(Taxonomy::Free(schema->attribute(kOccupation).domain_size));
  set.Add(Taxonomy::Free(schema->attribute(kSalaryClass).domain_size));
  return set;
}

namespace {

SchemaPtr HospitalSchema() {
  std::vector<AttributeDef> defs;
  defs.push_back(MakeNumerical("Age", 100, /*base=*/0));
  defs.push_back(MakeLabeled("Sex", {"F", "M"}));
  // Zipcodes on a 1000 grid, 0..99000.
  defs.push_back(MakeNumerical("Zipcode", 100, /*base=*/0, /*step=*/1000));
  defs.push_back(MakeLabeled(
      "Disease", {"bronchitis", "dyspepsia", "flu", "gastritis", "pneumonia"}));
  return std::make_shared<Schema>(std::move(defs));
}

constexpr Code kF = 0;
constexpr Code kM = 1;
constexpr Code kBronchitis = 0;
constexpr Code kDyspepsia = 1;
constexpr Code kFlu = 2;
constexpr Code kGastritis = 3;
constexpr Code kPneumonia = 4;

}  // namespace

Microdata HospitalExample() {
  Microdata md;
  md.table = Table(HospitalSchema());
  // Table 1, in tuple-id order (tuple 1 is Bob, tuple 7 is Alice).
  const Code rows[8][4] = {
      {23, kM, 11, kPneumonia}, {27, kM, 13, kDyspepsia},
      {35, kM, 59, kDyspepsia}, {59, kM, 12, kPneumonia},
      {61, kF, 54, kFlu},       {65, kF, 25, kGastritis},
      {65, kF, 25, kFlu},       {70, kF, 30, kBronchitis},
  };
  for (const auto& row : rows) md.table.AppendRow(row);
  md.qi_columns = {0, 1, 2};
  md.sensitive_column = 3;
  ANATOMY_CHECK_OK(md.Validate());
  return md;
}

Table VoterRegistrationList() {
  std::vector<AttributeDef> defs;
  defs.push_back(MakeLabeled(
      "Name", {"Ada", "Alice", "Bella", "Emily", "Stephanie"}));
  defs.push_back(MakeNumerical("Age", 100, /*base=*/0));
  defs.push_back(MakeLabeled("Sex", {"F", "M"}));
  defs.push_back(MakeNumerical("Zipcode", 100, /*base=*/0, /*step=*/1000));
  Table table(std::make_shared<Schema>(std::move(defs)));
  // Table 5; Emily is italicized in the paper: present in the voter list but
  // absent from the microdata.
  const Code rows[5][4] = {
      {0, 61, kF, 54}, {1, 65, kF, 25}, {2, 65, kF, 25},
      {3, 67, kF, 33}, {4, 70, kF, 30},
  };
  for (const auto& row : rows) table.AppendRow(row);
  return table;
}

}  // namespace anatomy
