#include "data/census_generator.h"

#include <algorithm>
#include <cmath>

#include "data/census.h"

namespace anatomy {

namespace {

/// Clamps a real-valued draw onto the code grid [0, domain).
Code ClampCode(double v, Code domain) {
  if (v < 0) return 0;
  if (v >= domain) return domain - 1;
  return static_cast<Code>(v);
}

/// Discretized gaussian draw centered at `center` with spread `sigma`.
Code GaussianCode(double center, double sigma, Code domain, Rng& rng) {
  return ClampCode(std::floor(center + sigma * rng.NextGaussian() + 0.5),
                   domain);
}

}  // namespace

CensusGenerator::CensusGenerator(const CensusGeneratorOptions& options)
    : options_(options) {
  // Fixed pseudo-random pay ranking of occupations, independent of the data
  // seed so that OCC-d and SAL-d datasets with different seeds share it.
  occupation_pay_rank_.resize(50);
  for (int i = 0; i < 50; ++i) occupation_pay_rank_[i] = i;
  Rng rank_rng(0xC0FFEE);
  rank_rng.Shuffle(occupation_pay_rank_);
}

int CensusGenerator::SampleProfile(Rng& rng) {
  // Mildly skewed profile mix (blue-collar profiles are more common).
  // Function-local static reference: intentionally leaked to keep the static
  // trivially destructible (style-guide rule on static storage duration).
  static const auto& kProfileWeights = *new std::vector<double>{
      1.6, 1.5, 1.3, 1.2, 1.0, 0.9, 0.8, 0.7};
  return static_cast<int>(rng.NextDiscrete(kProfileWeights));
}

Code CensusGenerator::SampleAge(int profile, Rng& rng) {
  // Two-hump adult age distribution; higher profiles skew slightly older
  // (seniority correlates with socioeconomic standing).
  const double hump = rng.NextBool(0.6) ? 16.0 : 42.0;
  const double shift = 2.0 * profile;
  return GaussianCode(hump + shift, 8.0, 78, rng);
}

Code CensusGenerator::SampleGender(int profile, Rng& rng) {
  // Profile-dependent gender balance between 38% and 62% male.
  const double p_male = 0.38 + 0.24 * (profile / 7.0);
  return rng.NextBool(p_male) ? 1 : 0;
}

Code CensusGenerator::SampleEducation(int profile, Rng& rng) {
  // Education (0..16, years-of-schooling codes) centered by profile.
  const double center = 4.0 + 1.5 * profile;
  return GaussianCode(center, 2.2, 17, rng);
}

Code CensusGenerator::SampleMarital(Code age, Rng& rng) {
  // Age drives marital status: codes {0 never-married, 1 married,
  // 2 separated, 3 divorced, 4 widowed, 5 spouse-absent}.
  const int years = 15 + age;
  std::vector<double> w(6);
  if (years < 25) {
    w = {8.0, 1.5, 0.1, 0.1, 0.01, 0.2};
  } else if (years < 40) {
    w = {3.0, 5.5, 0.4, 0.8, 0.05, 0.3};
  } else if (years < 60) {
    w = {1.0, 6.0, 0.5, 1.6, 0.4, 0.3};
  } else {
    w = {0.5, 4.5, 0.3, 1.2, 3.0, 0.3};
  }
  return static_cast<Code>(rng.NextDiscrete(w));
}

Code CensusGenerator::SampleCountry(Rng& rng) {
  // Heavy-headed country-of-origin distribution (code 0 = native-born
  // dominates), Zipf tail over the remaining 82.
  if (rng.NextBool(0.72)) return 0;
  return 1 + static_cast<Code>(rng.NextZipf(82, 0.55));
}

Code CensusGenerator::SampleRace(Code country, Rng& rng) {
  // Race correlates with region of origin: countries fall into coarse region
  // blocks, each preferring one race code.
  const Code preferred = (country == 0) ? 0 : 1 + (country / 12) % 8;
  if (rng.NextBool(0.65)) return preferred;
  return static_cast<Code>(rng.NextBounded(9));
}

Code CensusGenerator::SampleWorkClass(int profile, Rng& rng) {
  // Ten work classes; each profile prefers a window of three.
  const Code base = static_cast<Code>((profile * 3) % 10);
  const double r = rng.NextDouble();
  if (r < 0.5) return base;
  if (r < 0.75) return (base + 1) % 10;
  if (r < 0.88) return (base + 2) % 10;
  return static_cast<Code>(rng.NextBounded(10));
}

Code CensusGenerator::SampleOccupation(int profile, Code education, Rng& rng) {
  // Half the mass in a profile-and-education-specific band of 10 occupations
  // with geometric decay, half uniform. The uniform half keeps every
  // occupation's frequency well under n/10, so OCC-d stays 10-eligible.
  if (rng.NextBool(0.5)) {
    const Code band_start =
        static_cast<Code>((profile * 6 + (education / 6) * 17) % 50);
    static const auto& kBand = *new std::vector<double>(GeometricWeights(10, 0.75));
    return (band_start + static_cast<Code>(rng.NextDiscrete(kBand))) % 50;
  }
  return static_cast<Code>(rng.NextBounded(50));
}

Code CensusGenerator::SampleSalary(Code age, Code education, Code work_class,
                                   Code occupation, Rng& rng) {
  // Salary class (50 ordered brackets) from a socioeconomic score. The career
  // hump makes salary non-monotone in age, which defeats naive uniform
  // interpolation inside generalized cells.
  const int years = 15 + age;
  const double age_hump =
      std::max(0.0, 1.0 - std::abs(years - 48.0) / 33.0);
  const double score = 0.34 * (education / 16.0) +
                       0.30 * (occupation_pay_rank_[occupation] / 49.0) +
                       0.16 * age_hump + 0.08 * (work_class / 9.0) +
                       0.12 * rng.NextDouble();
  return ClampCode(std::floor(score * 50.0), 50);
}

CensusGenerator::Person CensusGenerator::SamplePerson(Rng& rng) {
  Person p;
  p.profile = SampleProfile(rng);
  p.age = SampleAge(p.profile, rng);
  p.gender = SampleGender(p.profile, rng);
  p.education = SampleEducation(p.profile, rng);
  p.marital = SampleMarital(p.age, rng);
  p.country = SampleCountry(rng);
  p.race = SampleRace(p.country, rng);
  p.work_class = SampleWorkClass(p.profile, rng);
  p.occupation = SampleOccupation(p.profile, p.education, rng);
  p.salary = SampleSalary(p.age, p.education, p.work_class, p.occupation, rng);
  return p;
}

Table CensusGenerator::Generate() {
  Table table(CensusSchema());
  table.Reserve(options_.num_rows);
  Rng rng(options_.seed);
  Code row[kCensusNumColumns];
  for (RowId i = 0; i < options_.num_rows; ++i) {
    const Person p = SamplePerson(rng);
    row[kAge] = p.age;
    row[kGender] = p.gender;
    row[kEducation] = p.education;
    row[kMarital] = p.marital;
    row[kRace] = p.race;
    row[kWorkClass] = p.work_class;
    row[kCountry] = p.country;
    row[kOccupation] = p.occupation;
    row[kSalaryClass] = p.salary;
    table.AppendRow(row);
  }
  return table;
}

Table GenerateCensus(RowId num_rows, uint64_t seed) {
  CensusGeneratorOptions options;
  options.seed = seed;
  options.num_rows = num_rows;
  return CensusGenerator(options).Generate();
}

}  // namespace anatomy
