#include "workload/workload.h"

#include <cmath>
#include <utility>

namespace anatomy {

size_t PredicateCardinality(Code domain_size, double s, int qd) {
  const double b =
      std::ceil(domain_size * std::pow(s, 1.0 / (qd + 1)));
  if (b < 1.0) return 1;
  if (b > domain_size) return static_cast<size_t>(domain_size);
  return static_cast<size_t>(b);
}

StatusOr<WorkloadGenerator> WorkloadGenerator::Create(
    const Microdata& microdata, const WorkloadOptions& options) {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  int qd = options.qd;
  if (qd == 0) qd = static_cast<int>(microdata.d());
  if (qd < 1 || qd > static_cast<int>(microdata.d())) {
    return Status::InvalidArgument("qd must be in [1, d]");
  }
  if (!(options.s > 0.0 && options.s <= 1.0)) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  return WorkloadGenerator(microdata, options, qd);
}

WorkloadGenerator::WorkloadGenerator(const Microdata& microdata,
                                     const WorkloadOptions& options, int qd)
    : microdata_(&microdata), options_(options), qd_(qd), rng_(options.seed) {}

AttributePredicate WorkloadGenerator::RandomPredicate(size_t qi_index,
                                                      Code domain_size) {
  const size_t b = PredicateCardinality(domain_size, options_.s, qd_);
  if (options_.range_predicates) {
    // A random maximal run [lo, lo + b): same cardinality, interval shape.
    const Code lo = static_cast<Code>(
        rng_.NextBounded(static_cast<uint64_t>(domain_size - b + 1)));
    std::vector<Code> values(b);
    for (size_t i = 0; i < b; ++i) values[i] = lo + static_cast<Code>(i);
    return AttributePredicate(qi_index, std::move(values));
  }
  std::vector<uint32_t> picks = rng_.SampleWithoutReplacement(
      static_cast<uint32_t>(domain_size), static_cast<uint32_t>(b));
  std::vector<Code> values(picks.begin(), picks.end());
  return AttributePredicate(qi_index, std::move(values));
}

StatusOr<MixedWorkloadGenerator> MixedWorkloadGenerator::Create(
    const Microdata& microdata, const MixedWorkloadOptions& options) {
  if (!(options.sum_fraction >= 0.0 && options.sum_fraction <= 1.0)) {
    return Status::InvalidArgument("sum_fraction must be in [0, 1]");
  }
  ANATOMY_ASSIGN_OR_RETURN(WorkloadGenerator base,
                           WorkloadGenerator::Create(microdata, options.base));
  return MixedWorkloadGenerator(std::move(base), microdata, options);
}

MixedWorkloadGenerator::MixedWorkloadGenerator(
    WorkloadGenerator base, const Microdata& microdata,
    const MixedWorkloadOptions& options)
    : base_(std::move(base)),
      options_(options),
      mix_rng_(Rng::ForStream(options.base.seed, 0xA6)) {
  for (size_t i = 0; i < microdata.d(); ++i) {
    if (microdata.qi_attribute(i).kind == AttributeKind::kNumerical) {
      measure_qis_.push_back(i);
    }
  }
  if (measure_qis_.empty()) {
    for (size_t i = 0; i < microdata.d(); ++i) measure_qis_.push_back(i);
  }
}

AggregateQuery MixedWorkloadGenerator::Next() {
  AggregateQuery query;
  query.predicates = base_.Next();
  if (mix_rng_.NextBool(options_.sum_fraction)) {
    query.kind = AggregateKind::kSum;
    query.measure_qi =
        measure_qis_[mix_rng_.NextBounded(measure_qis_.size())];
  }
  return query;
}

CountQuery WorkloadGenerator::Next() {
  CountQuery query;
  // qd random QI attributes (a random qd-sized subset, Section 6.1).
  std::vector<uint32_t> attrs = rng_.SampleWithoutReplacement(
      static_cast<uint32_t>(microdata_->d()), static_cast<uint32_t>(qd_));
  query.qi_predicates.reserve(attrs.size());
  for (uint32_t i : attrs) {
    query.qi_predicates.push_back(
        RandomPredicate(i, microdata_->qi_attribute(i).domain_size));
  }
  query.sensitive_predicate = RandomPredicate(
      0, microdata_->sensitive_attribute().domain_size);
  return query;
}

}  // namespace anatomy
