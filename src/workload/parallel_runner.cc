#include "workload/parallel_runner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace anatomy {

ParallelRunner::ParallelRunner(const ParallelRunnerOptions& options)
    : pool_(options.num_threads),
      batch_size_(options.batch_size == 0 ? 1 : options.batch_size) {
  worker_scratch_.resize(pool_.num_threads());
  worker_rngs_.reserve(pool_.num_threads());
  for (size_t w = 0; w < pool_.num_threads(); ++w) {
    worker_rngs_.push_back(Rng::ForStream(options.seed, w));
  }
  worker_staging_.resize(pool_.num_threads());
  worker_staging_u64_.resize(pool_.num_threads());
}

std::vector<double> ParallelRunner::Map(const std::vector<CountQuery>& queries,
                                        const QueryFn& fn) {
  // Every shard records into the same histogram: it shards its counters
  // per recording thread internally and merges on read, so the adds are
  // exact, commutative, and uncontended — the merged distribution is
  // independent of sharding (the registry never influences what is
  // computed; see the header's determinism contract).
  const bool metrics_on = obs::MetricsEnabled();
  obs::Histogram* latency_ns =
      metrics_on
          ? obs::MetricRegistry::Global().GetHistogram("query.latency_ns")
          : nullptr;
  obs::Counter* query_count =
      metrics_on ? obs::MetricRegistry::Global().GetCounter("query.count")
                 : nullptr;

  std::vector<double> results(queries.size());
  pool_.ParallelFor(queries.size(),
                    [&](size_t shard, size_t begin, size_t end) {
                      obs::ScopedSpan shard_span("query.shard", "query");
                      EstimatorScratch& scratch = worker_scratch_[shard];
                      Rng& rng = worker_rngs_[shard];
                      // Stage into shard-private storage so the hot loop
                      // never writes cache lines a neighboring shard's
                      // boundary writes share; one copy-back per shard.
                      std::vector<double>& staging = worker_staging_[shard];
                      staging.resize(end - begin);
                      for (size_t i = begin; i < end; ++i) {
                        ScopedTimer<obs::Histogram> timer(latency_ns);
                        staging[i - begin] = fn(queries[i], scratch, rng);
                      }
                      std::copy(staging.begin(), staging.end(),
                                results.begin() + begin);
                      if (query_count != nullptr) {
                        query_count->Increment(end - begin);
                      }
                    });
  return results;
}

std::vector<double> ParallelRunner::MapBatched(
    const std::vector<CountQuery>& queries, const BatchFn& fn) {
  const bool metrics_on = obs::MetricsEnabled();
  obs::Histogram* latency_ns =
      metrics_on
          ? obs::MetricRegistry::Global().GetHistogram("query.latency_ns")
          : nullptr;
  obs::Counter* query_count =
      metrics_on ? obs::MetricRegistry::Global().GetCounter("query.count")
                 : nullptr;

  std::vector<double> results(queries.size());
  pool_.ParallelFor(
      queries.size(), [&](size_t shard, size_t begin, size_t end) {
        obs::ScopedSpan shard_span("query.shard", "query");
        EstimatorScratch& scratch = worker_scratch_[shard];
        std::vector<double>& staging = worker_staging_[shard];
        staging.resize(end - begin);
        for (size_t b = begin; b < end; b += batch_size_) {
          const size_t count = std::min(batch_size_, end - b);
          if (latency_ns == nullptr) {
            fn(&queries[b], count, scratch, &staging[b - begin]);
            continue;
          }
          // One timed section per batch (two clock reads), spread over the
          // batch's queries: each gets the batch mean, the first also the
          // remainder, so histogram count == queries served and the sum is
          // the exact elapsed time.
          Stopwatch watch;
          fn(&queries[b], count, scratch, &staging[b - begin]);
          const uint64_t elapsed = watch.ElapsedNanos();
          const uint64_t mean = elapsed / count;
          latency_ns->Record(mean + elapsed % count);
          for (size_t i = 1; i < count; ++i) latency_ns->Record(mean);
        }
        std::copy(staging.begin(), staging.end(), results.begin() + begin);
        if (query_count != nullptr) query_count->Increment(end - begin);
      });
  return results;
}

std::vector<uint64_t> ParallelRunner::CountAll(
    const ExactEvaluator& exact, const std::vector<CountQuery>& queries) {
  std::vector<uint64_t> results(queries.size());
  pool_.ParallelFor(queries.size(),
                    [&](size_t shard, size_t begin, size_t end) {
                      EstimatorScratch& scratch = worker_scratch_[shard];
                      std::vector<uint64_t>& staging =
                          worker_staging_u64_[shard];
                      staging.resize(end - begin);
                      for (size_t i = begin; i < end; ++i) {
                        staging[i - begin] = exact.Count(queries[i], scratch);
                      }
                      std::copy(staging.begin(), staging.end(),
                                results.begin() + begin);
                    });
  return results;
}

StatusOr<MaterializedWorkload> ParallelRunner::Materialize(
    const Microdata& microdata, const ExactEvaluator& exact,
    const WorkloadOptions& options, const RunnerOptions& runner_options) {
  ANATOMY_ASSIGN_OR_RETURN(WorkloadGenerator generator,
                           WorkloadGenerator::Create(microdata, options));
  MaterializedWorkload out;
  out.queries.reserve(options.num_queries);
  out.actuals.reserve(options.num_queries);

  // Generate candidate batches from the single generator stream, evaluate
  // their ground truth in parallel, then accept/skip scanning in generation
  // order — exactly the sequential runner's semantics: the scan stops at
  // the final accepted query, precisely where the sequential generator
  // stops drawing, so zero_actual_skipped and the consecutive-skip streak
  // match it on the same seed (asserted by parallel_query_test's
  // differential stress test). Candidates oversampled past that point are
  // discarded, and the discard is counted in oversampled_discarded so the
  // accounting is auditable.
  size_t consecutive_skips = 0;
  std::vector<CountQuery> batch;
  while (out.queries.size() < options.num_queries) {
    const size_t remaining = options.num_queries - out.queries.size();
    // Oversample a little so one round usually suffices despite skips.
    const size_t batch_size = remaining + remaining / 4 + 16;
    batch.clear();
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) batch.push_back(generator.Next());
    const std::vector<uint64_t> actuals = CountAll(exact, batch);
    size_t scanned = 0;
    for (; scanned < batch.size() && out.queries.size() < options.num_queries;
         ++scanned) {
      if (actuals[scanned] == 0) {
        ++out.zero_actual_skipped;
        if (++consecutive_skips > runner_options.max_consecutive_skips) {
          return Status::FailedPrecondition(
              "workload keeps producing empty-answer queries; raise s or qd");
        }
        continue;
      }
      consecutive_skips = 0;
      out.queries.push_back(std::move(batch[scanned]));
      out.actuals.push_back(actuals[scanned]);
    }
    out.oversampled_discarded += batch.size() - scanned;
  }
  return out;
}

StatusOr<ParallelWorkloadResult> ParallelRunner::RunWorkload(
    const Microdata& microdata, const AnatomizedTables& anatomized,
    const GeneralizedTable& generalized, const WorkloadOptions& options,
    const RunnerOptions& runner_options) {
  ExactEvaluator exact(microdata);
  ANATOMY_ASSIGN_OR_RETURN(
      MaterializedWorkload workload,
      Materialize(microdata, exact, options, runner_options));

  AnatomyEstimator anatomy_estimator(anatomized, runner_options.estimator);
  GeneralizationEstimator generalization_estimator(generalized);

  // Estimator throughput from the shared latency histogram's deltas across
  // the two estimate passes (same derivation as the sequential runner).
  obs::Histogram* latency_ns =
      obs::MetricsEnabled()
          ? obs::MetricRegistry::Global().GetHistogram("query.latency_ns")
          : nullptr;
  const uint64_t latency_count0 = latency_ns ? latency_ns->count() : 0;
  const uint64_t latency_sum0 = latency_ns ? latency_ns->sum() : 0;

  // Parallel serving can't tick mid-pass (the engine is single-writer), so
  // the SLO windows advance once per estimate pass on the same virtual
  // clock the sequential runner uses: the latency histogram's sum.
  auto slo_tick = [&] {
    if (runner_options.slo == nullptr) return;
    runner_options.slo->Tick(latency_ns != nullptr ? latency_ns->sum() : 0);
  };

  ParallelWorkloadResult result;
  result.anatomy_estimates = EstimateAll(anatomy_estimator, workload.queries);
  slo_tick();
  result.generalization_estimates =
      EstimateAll(generalization_estimator, workload.queries);
  slo_tick();
  result.actuals = std::move(workload.actuals);

  if (latency_ns != nullptr) {
    const uint64_t dc = latency_ns->count() - latency_count0;
    const uint64_t dns = latency_ns->sum() - latency_sum0;
    if (dns > 0) {
      result.summary.estimator_qps =
          static_cast<double>(dc) / (static_cast<double>(dns) * 1e-9);
    }
  }

  // Sequential reduction in query order: bit-identical to RunWorkload().
  double anatomy_total = 0.0;
  double generalization_total = 0.0;
  for (size_t i = 0; i < result.actuals.size(); ++i) {
    const double actual = static_cast<double>(result.actuals[i]);
    anatomy_total += std::abs(result.anatomy_estimates[i] - actual) / actual;
    generalization_total +=
        std::abs(result.generalization_estimates[i] - actual) / actual;
  }
  result.summary.queries_evaluated = result.actuals.size();
  result.summary.zero_actual_skipped = workload.zero_actual_skipped;
  result.summary.anatomy_error =
      anatomy_total / static_cast<double>(result.actuals.size());
  result.summary.generalization_error =
      generalization_total / static_cast<double>(result.actuals.size());
  return result;
}

}  // namespace anatomy
