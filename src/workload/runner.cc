#include "workload/runner.h"

#include <cmath>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace anatomy {

StatusOr<WorkloadResult> RunWorkload(const Microdata& microdata,
                                     const AnatomizedTables& anatomized,
                                     const GeneralizedTable& generalized,
                                     const WorkloadOptions& options,
                                     const RunnerOptions& runner_options) {
  ANATOMY_ASSIGN_OR_RETURN(WorkloadGenerator generator,
                           WorkloadGenerator::Create(microdata, options));
  ExactEvaluator exact(microdata);
  AnatomyEstimator anatomy_estimator(anatomized, runner_options.estimator);
  GeneralizationEstimator generalization_estimator(generalized);

  // Per-query latency is recorded only when metrics are on; the disabled
  // path pays no clock reads (the histogram/counter pointers stay null).
  const bool metrics_on = obs::MetricsEnabled();
  obs::Histogram* latency_ns =
      metrics_on
          ? obs::MetricRegistry::Global().GetHistogram("query.latency_ns")
          : nullptr;
  obs::Counter* query_count =
      metrics_on ? obs::MetricRegistry::Global().GetCounter("query.count")
                 : nullptr;

  // Throughput falls out of the same histogram the figures already record:
  // count/sum deltas across the run give estimates per second of pure
  // estimator time, with no extra flags or clock reads.
  const uint64_t latency_count0 = latency_ns ? latency_ns->count() : 0;
  const uint64_t latency_sum0 = latency_ns ? latency_ns->sum() : 0;

  WorkloadResult result;
  double anatomy_total = 0.0;
  double generalization_total = 0.0;
  size_t consecutive_skips = 0;
  while (result.queries_evaluated < options.num_queries) {
    const CountQuery query = generator.Next();
    const uint64_t act = exact.Count(query);
    if (act == 0) {
      ++result.zero_actual_skipped;
      if (++consecutive_skips > runner_options.max_consecutive_skips) {
        return Status::FailedPrecondition(
            "workload keeps producing empty-answer queries; raise s or qd");
      }
      continue;
    }
    consecutive_skips = 0;
    const double actual = static_cast<double>(act);
    // One latency sample per estimate served, matching the parallel
    // runner's per-estimate recording in Map().
    {
      ScopedTimer<obs::Histogram> timer(latency_ns);
      anatomy_total +=
          std::abs(anatomy_estimator.Estimate(query) - actual) / actual;
    }
    {
      ScopedTimer<obs::Histogram> timer(latency_ns);
      generalization_total +=
          std::abs(generalization_estimator.Estimate(query) - actual) / actual;
    }
    if (query_count != nullptr) query_count->Increment(2);
    ++result.queries_evaluated;
    // SLO windows advance on accumulated estimator time — the histogram sum
    // is the run's virtual clock (monotone, deterministic per workload).
    if (runner_options.slo != nullptr && runner_options.slo_tick_every > 0 &&
        result.queries_evaluated % runner_options.slo_tick_every == 0) {
      runner_options.slo->Tick(latency_ns != nullptr
                                   ? latency_ns->sum()
                                   : result.queries_evaluated);
    }
  }
  if (runner_options.slo != nullptr) {
    runner_options.slo->Tick(latency_ns != nullptr
                                 ? latency_ns->sum()
                                 : result.queries_evaluated);
  }
  result.anatomy_error = anatomy_total / result.queries_evaluated;
  result.generalization_error =
      generalization_total / result.queries_evaluated;
  if (latency_ns != nullptr) {
    const uint64_t dc = latency_ns->count() - latency_count0;
    const uint64_t dns = latency_ns->sum() - latency_sum0;
    if (dns > 0) {
      result.estimator_qps =
          static_cast<double>(dc) / (static_cast<double>(dns) * 1e-9);
    }
  }
  return result;
}

}  // namespace anatomy
