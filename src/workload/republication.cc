#include "workload/republication.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "anatomy/anatomized_tables.h"
#include "anatomy/rce.h"
#include "anatomy/sharded_anatomizer.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/anatomy_estimator.h"
#include "query/exact_evaluator.h"
#include "workload/parallel_runner.h"

namespace anatomy {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One epoch's rebuild, possibly in flight on a side thread. The outcome is
/// only read after Join(), so no synchronization beyond the join is needed.
struct PendingRebuild {
  std::thread thread;
  std::optional<StatusOr<ShardedAnatomizeResult>> outcome;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;

  void Join() {
    if (thread.joinable()) thread.join();
  }
};

uint64_t IntervalOverlapNs(uint64_t a_start, uint64_t a_end, uint64_t b_start,
                           uint64_t b_end) {
  const uint64_t lo = std::max(a_start, b_start);
  const uint64_t hi = std::min(a_end, b_end);
  return hi > lo ? hi - lo : 0;
}

}  // namespace

StatusOr<RepublicationResult> RunRepublication(
    const Microdata& microdata, const RepublicationOptions& options) {
  if (options.epochs == 0) {
    return Status::InvalidArgument("republication needs at least one epoch");
  }
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  obs::ScopedSpan run_span("republication.run", "workload");

  const RowId n = microdata.table.num_rows();
  ExactEvaluator exact(microdata);
  ParallelRunner serving({.num_threads = options.num_threads,
                          .seed = options.seed});

  // Rebuilds depend only on (microdata, l, seed, shards) — identical on any
  // thread, so moving epoch e+1's rebuild under epoch e's serving changes
  // timing fields only, never partitions or estimates.
  auto run_rebuild = [&](size_t e) -> StatusOr<ShardedAnatomizeResult> {
    ShardedAnatomizer anatomizer({.l = options.l,
                                  .seed = SplitMix64(options.seed ^ e),
                                  .shards = options.shards,
                                  .num_threads = options.num_threads});
    return anatomizer.Run(microdata);
  };

  // Epoch 0 has no previous epoch's serving to hide behind: fully exposed.
  PendingRebuild pending;
  pending.start_ns = NowNs();
  pending.outcome.emplace(run_rebuild(0));
  pending.end_ns = NowNs();

  RepublicationResult result;
  result.epochs.reserve(options.epochs);
  /// Overlap of the NEXT-adopted epoch's rebuild with this iteration's
  /// serving, computed at the bottom of the loop and consumed at the top.
  uint64_t carried_overlap_ns = 0;
  for (size_t e = 0; e < options.epochs; ++e) {
    obs::ScopedSpan epoch_span("republication.epoch", "workload");
    RepublicationEpoch epoch;
    epoch.anatomize_seed = SplitMix64(options.seed ^ e);
    epoch.rebuild_ns = pending.end_ns - pending.start_ns;
    epoch.overlap_ns = std::min(carried_overlap_ns, epoch.rebuild_ns);
    epoch.exposed_rebuild_ns = epoch.rebuild_ns - epoch.overlap_ns;

    if (!pending.outcome->ok()) return pending.outcome->status();
    ShardedAnatomizeResult rebuild = std::move(*pending.outcome).value();
    epoch.shards_run = rebuild.shards_run;
    epoch.merged_shards = rebuild.merged_shards;
    epoch.num_groups = rebuild.partition.num_groups();
    ANATOMY_RETURN_IF_ERROR(
        rebuild.partition.ValidateLDiverse(microdata, options.l));

    ANATOMY_ASSIGN_OR_RETURN(AnatomizedTables tables,
                             AnatomizedTables::Build(microdata,
                                                     rebuild.partition));
    epoch.rce = AnatomyRce(tables);
    // The sharded quality bound (DESIGN.md §9): each of the S shards adds at
    // most l-1 residue tuples of slack on top of Theorem 2's lower bound.
    epoch.rce_bound =
        RceLowerBound(n, options.l) *
        (1.0 + static_cast<double>(options.shards) *
                   static_cast<double>(options.l - 1) /
                   static_cast<double>(n));
    if (epoch.rce > epoch.rce_bound * (1.0 + 1e-9)) {
      return Status::Internal(
          "epoch " + std::to_string(e) + " RCE " + std::to_string(epoch.rce) +
          " exceeds the sharded bound " + std::to_string(epoch.rce_bound));
    }

    // ---- COW: kick off the NEXT epoch's rebuild beside this serve. ----
    PendingRebuild next;
    if (e + 1 < options.epochs) {
      next.start_ns = NowNs();
      next.thread = std::thread([&next, &run_rebuild, e] {
        next.outcome.emplace(run_rebuild(e + 1));
        next.end_ns = NowNs();
      });
    }

    // ---- Serve: the epoch's workload against the fresh publication. ----
    // Wrapped so every early return joins the in-flight rebuild first.
    const uint64_t serve_start_ns = NowNs();
    const Status served = [&]() -> Status {
      AnatomyEstimator estimator(tables);
      WorkloadOptions workload = options.workload;
      workload.seed = SplitMix64(options.seed ^ (0x5EEDULL + e));
      ANATOMY_ASSIGN_OR_RETURN(MaterializedWorkload queries,
                               serving.Materialize(microdata, exact,
                                                   workload));
      const std::vector<double> estimates =
          serving.EstimateAll(estimator, queries.queries);
      double total = 0.0;
      for (size_t i = 0; i < queries.queries.size(); ++i) {
        total += std::abs(estimates[i] -
                          static_cast<double>(queries.actuals[i])) /
                 static_cast<double>(queries.actuals[i]);
      }
      epoch.queries_evaluated = queries.queries.size();
      epoch.anatomy_error =
          epoch.queries_evaluated == 0
              ? 0.0
              : total / static_cast<double>(epoch.queries_evaluated);
      return Status::OK();
    }();
    const uint64_t serve_end_ns = NowNs();
    epoch.serve_ns = serve_end_ns - serve_start_ns;
    next.Join();
    if (!served.ok()) return served;

    // The next epoch's rebuild just ran beside this epoch's serving; its
    // hidden portion is the intersection of the two wall-clock windows,
    // consumed when that epoch is adopted at the top of the next iteration.
    carried_overlap_ns =
        next.outcome.has_value()
            ? IntervalOverlapNs(serve_start_ns, serve_end_ns, next.start_ns,
                                next.end_ns)
            : 0;

    result.mean_anatomy_error += epoch.anatomy_error;
    result.total_rebuild_ns += epoch.rebuild_ns;
    result.total_serve_ns += epoch.serve_ns;
    result.total_overlap_ns += epoch.overlap_ns;
    result.total_exposed_rebuild_ns += epoch.exposed_rebuild_ns;

    if (obs::MetricsEnabled()) {
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      registry.GetCounter("republication.epochs")->Increment();
      registry.GetCounter("republication.queries")
          ->Increment(epoch.queries_evaluated);
      registry.GetHistogram("republication.exposed_rebuild_ns")
          ->Record(epoch.exposed_rebuild_ns);
    }
    result.epochs.push_back(epoch);
    pending = std::move(next);
  }
  result.mean_anatomy_error /= static_cast<double>(options.epochs);
  return result;
}

}  // namespace anatomy
