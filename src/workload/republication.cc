#include "workload/republication.h"

#include <cmath>

#include "anatomy/anatomized_tables.h"
#include "anatomy/rce.h"
#include "anatomy/sharded_anatomizer.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/anatomy_estimator.h"
#include "query/exact_evaluator.h"
#include "workload/parallel_runner.h"

namespace anatomy {

StatusOr<RepublicationResult> RunRepublication(
    const Microdata& microdata, const RepublicationOptions& options) {
  if (options.epochs == 0) {
    return Status::InvalidArgument("republication needs at least one epoch");
  }
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  obs::ScopedSpan run_span("republication.run", "workload");

  const RowId n = microdata.table.num_rows();
  ExactEvaluator exact(microdata);
  ParallelRunner serving({.num_threads = options.num_threads,
                          .seed = options.seed});

  RepublicationResult result;
  result.epochs.reserve(options.epochs);
  for (size_t e = 0; e < options.epochs; ++e) {
    obs::ScopedSpan epoch_span("republication.epoch", "workload");
    RepublicationEpoch epoch;
    epoch.anatomize_seed = SplitMix64(options.seed ^ e);

    // ---- Rebuild: shard-parallel Anatomize with this epoch's seed. ----
    ShardedAnatomizer anatomizer({.l = options.l,
                                  .seed = epoch.anatomize_seed,
                                  .shards = options.shards,
                                  .num_threads = options.num_threads});
    ANATOMY_ASSIGN_OR_RETURN(ShardedAnatomizeResult rebuild,
                             anatomizer.Run(microdata));
    epoch.shards_run = rebuild.shards_run;
    epoch.merged_shards = rebuild.merged_shards;
    epoch.num_groups = rebuild.partition.num_groups();
    ANATOMY_RETURN_IF_ERROR(
        rebuild.partition.ValidateLDiverse(microdata, options.l));

    ANATOMY_ASSIGN_OR_RETURN(AnatomizedTables tables,
                             AnatomizedTables::Build(microdata,
                                                     rebuild.partition));
    epoch.rce = AnatomyRce(tables);
    // The sharded quality bound (DESIGN.md §9): each of the S shards adds at
    // most l-1 residue tuples of slack on top of Theorem 2's lower bound.
    epoch.rce_bound =
        RceLowerBound(n, options.l) *
        (1.0 + static_cast<double>(options.shards) *
                   static_cast<double>(options.l - 1) /
                   static_cast<double>(n));
    if (epoch.rce > epoch.rce_bound * (1.0 + 1e-9)) {
      return Status::Internal(
          "epoch " + std::to_string(e) + " RCE " + std::to_string(epoch.rce) +
          " exceeds the sharded bound " + std::to_string(epoch.rce_bound));
    }

    // ---- Serve: the epoch's workload against the fresh publication. ----
    AnatomyEstimator estimator(tables);
    WorkloadOptions workload = options.workload;
    workload.seed = SplitMix64(options.seed ^ (0x5EEDULL + e));
    ANATOMY_ASSIGN_OR_RETURN(MaterializedWorkload queries,
                             serving.Materialize(microdata, exact, workload));
    const std::vector<double> estimates =
        serving.EstimateAll(estimator, queries.queries);
    double total = 0.0;
    for (size_t i = 0; i < queries.queries.size(); ++i) {
      total += std::abs(estimates[i] -
                        static_cast<double>(queries.actuals[i])) /
               static_cast<double>(queries.actuals[i]);
    }
    epoch.queries_evaluated = queries.queries.size();
    epoch.anatomy_error =
        epoch.queries_evaluated == 0
            ? 0.0
            : total / static_cast<double>(epoch.queries_evaluated);
    result.mean_anatomy_error += epoch.anatomy_error;

    if (obs::MetricsEnabled()) {
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      registry.GetCounter("republication.epochs")->Increment();
      registry.GetCounter("republication.queries")
          ->Increment(epoch.queries_evaluated);
    }
    result.epochs.push_back(epoch);
  }
  result.mean_anatomy_error /= static_cast<double>(options.epochs);
  return result;
}

}  // namespace anatomy
