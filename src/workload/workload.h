// Workload generation per Section 6.1 and Table 7.
//
// A query touches qd random QI attributes plus the sensitive attribute; each
// predicate is an OR of b random domain values with
//   b = ceil(|A| * s^(1/(qd+1)))                     (Equation 14)
// so that the query's expected selectivity is s.

#ifndef ANATOMY_WORKLOAD_WORKLOAD_H_
#define ANATOMY_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "query/aggregate.h"
#include "query/predicate.h"
#include "table/table.h"

namespace anatomy {

struct WorkloadOptions {
  /// Query dimensionality: number of QI attributes involved (1..d).
  int qd = 0;  // 0 means "all d QI attributes" (the paper's default qd = d)
  /// Expected selectivity (the paper's default s = 5%).
  double s = 0.05;
  /// Queries per workload (the paper uses 10,000).
  size_t num_queries = 10000;
  uint64_t seed = 7;
  /// When true, each predicate is a random *interval* of b consecutive
  /// domain values instead of b independent draws. Same cardinality b
  /// (Equation 14), so the expected selectivity is unchanged; range shape
  /// exercises the prefix-OR bitmap kernels with a single run.
  bool range_predicates = false;
};

/// Equation 14.
size_t PredicateCardinality(Code domain_size, double s, int qd);

class WorkloadGenerator {
 public:
  /// Validates qd in [1, d] (after resolving qd = 0 to d) and s in (0, 1].
  static StatusOr<WorkloadGenerator> Create(const Microdata& microdata,
                                            const WorkloadOptions& options);

  /// Generates the next random query.
  CountQuery Next();

  int qd() const { return qd_; }

 private:
  WorkloadGenerator(const Microdata& microdata, const WorkloadOptions& options,
                    int qd);

  AttributePredicate RandomPredicate(size_t qi_index, Code domain_size);

  const Microdata* microdata_;
  WorkloadOptions options_;
  int qd_;
  Rng rng_;
};

struct MixedWorkloadOptions {
  /// Predicate shape and seed, as for the plain COUNT workload.
  WorkloadOptions base;
  /// Fraction of queries that are SUMs; the rest are COUNTs. The mix is a
  /// per-query Bernoulli draw from a stream split off the base seed, so the
  /// predicate sequence of query i is identical across different fractions.
  double sum_fraction = 0.5;
};

/// The serving-shaped traffic mix: random COUNT/SUM aggregate queries with
/// the paper's Section 6.1 predicate shape. SUM queries draw their measure
/// uniformly from the numerical QI attributes (from all QIs when none is
/// numerical — NumericValue then aggregates the codes themselves).
class MixedWorkloadGenerator {
 public:
  static StatusOr<MixedWorkloadGenerator> Create(
      const Microdata& microdata, const MixedWorkloadOptions& options);

  AggregateQuery Next();

 private:
  MixedWorkloadGenerator(WorkloadGenerator base, const Microdata& microdata,
                         const MixedWorkloadOptions& options);

  WorkloadGenerator base_;
  MixedWorkloadOptions options_;
  std::vector<size_t> measure_qis_;
  /// Kind/measure draws: decoupled from the predicate stream (see
  /// sum_fraction).
  Rng mix_rng_;
};

}  // namespace anatomy

#endif  // ANATOMY_WORKLOAD_WORKLOAD_H_
