// Runs a workload against both publication methods and reports the paper's
// metric: average relative error |act - est| / act over the workload.

#ifndef ANATOMY_WORKLOAD_RUNNER_H_
#define ANATOMY_WORKLOAD_RUNNER_H_

#include <cmath>
#include <optional>

#include "anatomy/anatomized_tables.h"
#include "common/status.h"
#include "generalization/generalized_table.h"
#include "query/anatomy_estimator.h"
#include "query/exact_evaluator.h"
#include "query/generalization_estimator.h"
#include "workload/workload.h"

namespace anatomy {

namespace obs {
class SloEngine;
}  // namespace obs

struct WorkloadResult {
  double anatomy_error = 0.0;         // average relative error, in [0, inf)
  double generalization_error = 0.0;  // ditto
  size_t queries_evaluated = 0;
  /// Queries whose actual answer was 0 (relative error undefined); they are
  /// skipped and replaced, and their count reported for transparency.
  size_t zero_actual_skipped = 0;
  /// Estimates served per second of pure estimator time, derived from the
  /// `query.latency_ns` histogram deltas across this run (both methods'
  /// estimates pooled). 0 when metrics are disabled or nothing was timed.
  double estimator_qps = 0.0;
};

struct RunnerOptions {
  /// Give up after this many consecutive zero-actual queries (degenerate
  /// workload configurations).
  size_t max_consecutive_skips = 1000;
  /// Kernel/cache configuration of the anatomy estimator the runner builds.
  EstimatorOptions estimator;
  /// Optional SLO engine the runner ticks as it serves (not owned). The
  /// virtual clock passed to Tick is the cumulative query.latency_ns
  /// histogram sum, so windows measure estimator time, not wall idle time.
  /// Requires metrics to be enabled to observe anything.
  obs::SloEngine* slo = nullptr;
  /// Evaluated queries between ticks when `slo` is set.
  size_t slo_tick_every = 256;
};

/// Evaluates `options.num_queries` queries with nonzero actual answers.
StatusOr<WorkloadResult> RunWorkload(const Microdata& microdata,
                                     const AnatomizedTables& anatomized,
                                     const GeneralizedTable& generalized,
                                     const WorkloadOptions& options,
                                     const RunnerOptions& runner_options = {});

/// Single-method variant used by ablations: returns the average relative
/// error of one estimator callable (double(const CountQuery&)).
template <typename Estimator>
StatusOr<double> RunWorkloadAgainst(const Microdata& microdata,
                                    const WorkloadOptions& options,
                                    const Estimator& estimate,
                                    const RunnerOptions& runner_options = {}) {
  ANATOMY_ASSIGN_OR_RETURN(WorkloadGenerator generator,
                           WorkloadGenerator::Create(microdata, options));
  ExactEvaluator exact(microdata);
  double total = 0.0;
  size_t done = 0;
  size_t consecutive_skips = 0;
  while (done < options.num_queries) {
    const CountQuery query = generator.Next();
    const uint64_t act = exact.Count(query);
    if (act == 0) {
      if (++consecutive_skips > runner_options.max_consecutive_skips) {
        return Status::FailedPrecondition(
            "workload keeps producing empty-answer queries");
      }
      continue;
    }
    consecutive_skips = 0;
    total += std::abs(estimate(query) - static_cast<double>(act)) /
             static_cast<double>(act);
    ++done;
  }
  return total / static_cast<double>(done);
}

}  // namespace anatomy

#endif  // ANATOMY_WORKLOAD_RUNNER_H_
