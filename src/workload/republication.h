// Re-publication under load: the scenario that motivates shard-parallel
// Anatomize. A publisher that re-anatomizes its microdata on a schedule
// (Section 7's dynamic setting) cannot stall the query tier for the length
// of a sequential rebuild; each epoch rebuilds the publication with
// ShardedAnatomizer and serves a workload against the fresh tables with the
// ParallelRunner's machinery.
//
// The rebuild is copy-on-write: epoch e+1's Anatomize only reads the
// microdata and builds its own partition, so it runs on a side thread WHILE
// epoch e's workload is being served — the query clock never pauses for a
// rebuild. (An earlier revision stopped the world: serve, stop, rebuild,
// resume, which under-reported serving throughput and over-reported epoch
// cadence.) Each epoch reports its true timing: rebuild_ns, serve_ns, the
// overlap_ns of its rebuild hidden behind the previous epoch's serving, and
// the exposed_rebuild_ns remainder the query tier actually waited. Epoch
// 0's rebuild has no serving to hide behind and is fully exposed.
//
// Determinism mirrors the rest of the library: epoch e anatomizes with seed
// SplitMix64(seed ^ e), so the whole multi-epoch run is reproducible from
// (seed, shards) alone, at any thread count. Every epoch's RCE is checked
// against the sharded quality bound RceLowerBound(n, l) * (1 + S(l-1)/n)
// (see DESIGN.md §9) so a quality regression in the rebuild path fails the
// run instead of silently degrading the published tables.

#ifndef ANATOMY_WORKLOAD_REPUBLICATION_H_
#define ANATOMY_WORKLOAD_REPUBLICATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/table.h"
#include "workload/workload.h"

namespace anatomy {

struct RepublicationOptions {
  /// Rebuild-then-serve cycles.
  size_t epochs = 3;
  /// Privacy parameter of every epoch's publication.
  int l = 10;
  /// Shards for the parallel rebuild (1 = sequential Anatomize).
  size_t shards = 1;
  /// Worker threads for rebuild and serving; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Master seed; epoch e anatomizes with SplitMix64(seed ^ e).
  uint64_t seed = 1;
  /// Workload served against each epoch's publication.
  WorkloadOptions workload;
};

struct RepublicationEpoch {
  uint64_t anatomize_seed = 0;
  size_t shards_run = 0;
  size_t merged_shards = 0;
  size_t num_groups = 0;
  /// Closed-form RCE of this epoch's publication and the sharded bound it
  /// was checked against.
  double rce = 0.0;
  double rce_bound = 0.0;
  /// Average relative error |act - est| / act over the epoch's workload.
  double anatomy_error = 0.0;
  size_t queries_evaluated = 0;
  /// Wall-clock duration of this epoch's Anatomize rebuild and of serving
  /// its workload. Timing only — partitions and estimates are unaffected.
  uint64_t rebuild_ns = 0;
  uint64_t serve_ns = 0;
  /// Portion of this epoch's rebuild that ran concurrently with the
  /// previous epoch's serving (the COW overlap window), and the remainder
  /// the query tier actually waited for. exposed_rebuild_ns + overlap_ns ==
  /// rebuild_ns; epoch 0 is fully exposed.
  uint64_t overlap_ns = 0;
  uint64_t exposed_rebuild_ns = 0;
};

struct RepublicationResult {
  std::vector<RepublicationEpoch> epochs;
  /// Mean of the per-epoch anatomy errors.
  double mean_anatomy_error = 0.0;
  /// Sums of the per-epoch timings. total_exposed_rebuild_ns is what the
  /// query tier waited across the whole run; under COW it approaches
  /// epoch 0's rebuild alone when serving is longer than rebuilding.
  uint64_t total_rebuild_ns = 0;
  uint64_t total_serve_ns = 0;
  uint64_t total_overlap_ns = 0;
  uint64_t total_exposed_rebuild_ns = 0;
};

/// Runs `options.epochs` rebuild-then-serve cycles on `microdata`. Fails if
/// any epoch's publication violates l-diversity, fails its RCE bound, or the
/// workload degenerates (all-zero answers).
StatusOr<RepublicationResult> RunRepublication(
    const Microdata& microdata, const RepublicationOptions& options);

}  // namespace anatomy

#endif  // ANATOMY_WORKLOAD_REPUBLICATION_H_
