// Parallel query serving: shards a workload's queries across a fixed pool
// of worker threads, each owning a private EstimatorScratch arena and a
// private Rng stream (Rng::ForStream(seed, shard), i.e. seeded via
// SplitMix64(seed ^ shard)).
//
// Determinism contract: result[i] is a pure function of queries[i] and the
// immutable estimator, so per-query outputs are bit-identical for ANY
// thread count — sharding only decides who computes what, never what is
// computed. Aggregates (average errors) are reduced sequentially in query
// order after the parallel phase, so they are bit-identical to the
// sequential runner's accumulation too. The per-worker rng streams exist
// for future stochastic estimators; anything drawn from stream w is
// reproducible from (seed, w) alone.

#ifndef ANATOMY_WORKLOAD_PARALLEL_RUNNER_H_
#define ANATOMY_WORKLOAD_PARALLEL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "query/anatomy_estimator.h"
#include "query/estimator_scratch.h"
#include "query/exact_evaluator.h"
#include "query/generalization_estimator.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace anatomy {

struct ParallelRunnerOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Base seed of the per-worker rng streams (stream w = ForStream(seed, w)).
  uint64_t seed = 7;
  /// Queries per batched-evaluation call in the batched EstimateAll path
  /// (each batch materializes its distinct predicates once). Purely a
  /// performance knob: results are bit-identical at any batch size.
  size_t batch_size = 32;
};

/// A query set with precomputed nonzero ground-truth answers: exactly the
/// queries the sequential runner would have evaluated, in the same order.
struct MaterializedWorkload {
  std::vector<CountQuery> queries;
  std::vector<uint64_t> actuals;  // aligned with queries; all > 0
  /// Zero-answer queries skipped before the final accepted one — identical
  /// to the sequential runner's count on the same seed (asserted by
  /// parallel_query_test's differential stress test).
  size_t zero_actual_skipped = 0;
  /// Oversampled candidates generated after the final accepted query. They
  /// were evaluated but never scanned, exactly as the sequential generator
  /// never draws them — reported so the discard is auditable rather than
  /// silent; never part of zero_actual_skipped or the skip streak.
  size_t oversampled_discarded = 0;
};

struct ParallelWorkloadResult {
  /// Same aggregate metrics as the sequential RunWorkload, bit-identical.
  WorkloadResult summary;
  /// Per-query outputs, aligned with the materialized query order.
  std::vector<double> anatomy_estimates;
  std::vector<double> generalization_estimates;
  std::vector<uint64_t> actuals;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(const ParallelRunnerOptions& options = {});

  size_t num_threads() const { return pool_.num_threads(); }

  /// Evaluates fn(queries[i], scratch, rng) for every query, sharded across
  /// the pool; scratch and rng are the executing shard's. result[i] always
  /// corresponds to queries[i].
  using QueryFn =
      std::function<double(const CountQuery&, EstimatorScratch&, Rng&)>;
  std::vector<double> Map(const std::vector<CountQuery>& queries,
                          const QueryFn& fn);

  /// Like Map, but hands each shard contiguous batches of
  /// options.batch_size queries: fn(&queries[b], count, scratch, &out[b]).
  /// Latency accounting is per batch (two clock reads), spread over the
  /// batch's queries so histogram counts still equal queries served; the
  /// per-query values are therefore batch means.
  using BatchFn =
      std::function<void(const CountQuery*, size_t, EstimatorScratch&, double*)>;
  std::vector<double> MapBatched(const std::vector<CountQuery>& queries,
                                 const BatchFn& fn);

  /// Per-query estimates from any estimator exposing
  /// `double Estimate(const CountQuery&, EstimatorScratch&) const`.
  template <typename Estimator>
  std::vector<double> EstimateAll(const Estimator& estimator,
                                  const std::vector<CountQuery>& queries) {
    return Map(queries,
               [&estimator](const CountQuery& query, EstimatorScratch& scratch,
                            Rng&) { return estimator.Estimate(query, scratch); });
  }

  /// Anatomy estimators take the batched path: one predicate
  /// materialization per distinct predicate per batch instead of one cache
  /// round-trip per query. Bit-identical to the generic overload (asserted
  /// by parallel_query_test).
  std::vector<double> EstimateAll(const AnatomyEstimator& estimator,
                                  const std::vector<CountQuery>& queries) {
    return MapBatched(queries, [&estimator](const CountQuery* batch,
                                            size_t count,
                                            EstimatorScratch& scratch,
                                            double* out) {
      estimator.EstimateBatch(batch, count, scratch, out);
    });
  }

  /// Exact ground-truth counts, in parallel.
  std::vector<uint64_t> CountAll(const ExactEvaluator& exact,
                                 const std::vector<CountQuery>& queries);

  /// Generates `options.num_queries` queries with nonzero actual answers.
  /// Query generation is sequential (one generator stream), only the
  /// ground-truth evaluation is parallel, so the materialized set is
  /// identical to what the sequential runner consumes — including the
  /// consecutive-zero-answer failure mode.
  StatusOr<MaterializedWorkload> Materialize(
      const Microdata& microdata, const ExactEvaluator& exact,
      const WorkloadOptions& options, const RunnerOptions& runner_options = {});

  /// Parallel equivalent of RunWorkload(): same queries, same average
  /// errors (bit-identical), plus the per-query answers.
  StatusOr<ParallelWorkloadResult> RunWorkload(
      const Microdata& microdata, const AnatomizedTables& anatomized,
      const GeneralizedTable& generalized, const WorkloadOptions& options,
      const RunnerOptions& runner_options = {});

 private:
  ThreadPool pool_;
  size_t batch_size_;
  /// Shard-indexed worker state, reused across calls (warm arenas).
  std::vector<EstimatorScratch> worker_scratch_;
  std::vector<Rng> worker_rngs_;
  /// Per-shard result staging: workers write their shard's outputs here and
  /// copy once into the shared result vector, so the hot loop never stores
  /// into cache lines adjacent shards are writing (false sharing at shard
  /// boundaries of results[i]).
  std::vector<std::vector<double>> worker_staging_;
  std::vector<std::vector<uint64_t>> worker_staging_u64_;
};

}  // namespace anatomy

#endif  // ANATOMY_WORKLOAD_PARALLEL_RUNNER_H_
