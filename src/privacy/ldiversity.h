// l-diversity verification of published artifacts, plus the recursive
// (c, l)-diversity instantiation of Machanavajjhala et al. [10] that the
// paper's Section 3.1 discusses (Definition 2 is their "recursive
// (1/(l-1), 2)-diversity"; the general form guards against stronger
// background knowledge).

#ifndef ANATOMY_PRIVACY_LDIVERSITY_H_
#define ANATOMY_PRIVACY_LDIVERSITY_H_

#include "anatomy/anatomized_tables.h"
#include "common/status.h"
#include "generalization/generalized_table.h"

namespace anatomy {

/// OK iff every group of the anatomized publication satisfies Inequality 1.
Status VerifyAnatomizedLDiversity(const AnatomizedTables& tables, int l);

/// OK iff every group of the generalized publication satisfies Inequality 1.
Status VerifyGeneralizedLDiversity(const GeneralizedTable& table, int l);

/// Recursive (c, l)-diversity of one group histogram: with counts sorted
/// descending r_1 >= r_2 >= ... >= r_m, requires
///   r_1 < c * (r_l + r_{l+1} + ... + r_m).
/// Groups with fewer than l distinct values fail.
bool GroupIsRecursiveClDiverse(
    const std::vector<std::pair<Code, uint32_t>>& histogram, double c, int l);

/// OK iff every group of the anatomized publication is recursively
/// (c, l)-diverse.
Status VerifyRecursiveClDiversity(const AnatomizedTables& tables, double c,
                                  int l);

/// Entropy l-diversity of one group ([10]'s first instantiation): the
/// entropy of the group's sensitive distribution must be at least log(l).
/// Stricter than Definition 2 — it penalizes any skew, not only the mode.
bool GroupIsEntropyLDiverse(
    const std::vector<std::pair<Code, uint32_t>>& histogram, double l);

/// OK iff every group of the anatomized publication is entropy-l-diverse.
Status VerifyEntropyLDiversity(const AnatomizedTables& tables, double l);

}  // namespace anatomy

#endif  // ANATOMY_PRIVACY_LDIVERSITY_H_
