// Adversarial breach-probability analysis (Section 3.2).
//
// Tuple level (Lemma 1 / Corollary 1): an adversary who has located a tuple's
// group infers its sensitive value v with probability c_j(v) / |QI_j|.
//
// Individual level (Theorem 1): when f tuples share the target's QI values,
// the adversary averages over the f "which tuple is the target" scenarios;
// the breach probability is (1/f) * sum_i c_{j_i}(v_real) / |QI_{j_i}|, and
// is at most 1/l for any l-diverse anatomization.

#ifndef ANATOMY_PRIVACY_BREACH_H_
#define ANATOMY_PRIVACY_BREACH_H_

#include <vector>

#include "anatomy/anatomized_tables.h"
#include "generalization/generalized_table.h"
#include "table/table.h"

namespace anatomy {

/// Lemma 1: probability that the adversary assigns sensitive value `v` to
/// the microdata tuple published as QIT row `r`.
double TupleBreachProbability(const AnatomizedTables& tables, RowId r, Code v);

/// Rows of the QIT whose QI values equal `qi_values` (the f candidate tuples
/// of Theorem 1's proof).
std::vector<RowId> MatchingQitRows(const AnatomizedTables& tables,
                                   const std::vector<Code>& qi_values);

/// Theorem 1: breach probability for an individual with the given QI values
/// and real sensitive value. Returns 0 when no QIT tuple matches (the
/// adversary learns the individual is absent — no sensitive inference).
double IndividualBreachProbability(const AnatomizedTables& tables,
                                   const std::vector<Code>& qi_values,
                                   Code real_value);

/// The analogous individual-level inference against a generalized table: the
/// candidate tuples are all tuples of groups whose cell contains the QI
/// values; the inferred probability of `real_value` is the qualifying-tuple
/// fraction among them.
double GeneralizedIndividualBreachProbability(
    const GeneralizedTable& table, const std::vector<Code>& qi_values,
    Code real_value);

/// Maximum of TupleBreachProbability over all rows and sensitive values:
/// the worst-case disclosure of the publication. Corollary 1 bounds it by
/// 1/l.
double MaxTupleBreachProbability(const AnatomizedTables& tables);

}  // namespace anatomy

#endif  // ANATOMY_PRIVACY_BREACH_H_
