#include "privacy/breach.h"

#include <algorithm>

#include "common/check.h"

namespace anatomy {

double TupleBreachProbability(const AnatomizedTables& tables, RowId r,
                              Code v) {
  ANATOMY_CHECK(r < tables.num_rows());
  const GroupId g = tables.group_of_row(r);
  return static_cast<double>(tables.GroupCount(g, v)) / tables.group_size(g);
}

std::vector<RowId> MatchingQitRows(const AnatomizedTables& tables,
                                   const std::vector<Code>& qi_values) {
  const Table& qit = tables.qit();
  const size_t d = qit.num_columns() - 1;
  ANATOMY_CHECK(qi_values.size() == d);
  std::vector<RowId> rows;
  for (RowId r = 0; r < qit.num_rows(); ++r) {
    bool match = true;
    for (size_t i = 0; match && i < d; ++i) {
      match = qit.at(r, i) == qi_values[i];
    }
    if (match) rows.push_back(r);
  }
  return rows;
}

double IndividualBreachProbability(const AnatomizedTables& tables,
                                   const std::vector<Code>& qi_values,
                                   Code real_value) {
  const std::vector<RowId> candidates = MatchingQitRows(tables, qi_values);
  if (candidates.empty()) return 0.0;
  double total = 0.0;
  for (RowId r : candidates) {
    total += TupleBreachProbability(tables, r, real_value);
  }
  return total / static_cast<double>(candidates.size());
}

double GeneralizedIndividualBreachProbability(
    const GeneralizedTable& table, const std::vector<Code>& qi_values,
    Code real_value) {
  // Candidate tuples: every tuple of every group whose cell contains the QI
  // values; within a group each tuple is equally likely to be the target, so
  // the overall probability is (qualifying tuples) / (candidate tuples).
  uint64_t candidates = 0;
  uint64_t qualifying = 0;
  for (const GeneralizedGroup& group : table.groups()) {
    bool contains = true;
    for (size_t i = 0; contains && i < group.extents.size(); ++i) {
      contains = group.extents[i].Contains(qi_values[i]);
    }
    if (!contains) continue;
    candidates += group.size;
    for (const auto& [value, count] : group.histogram) {
      if (value == real_value) qualifying += count;
    }
  }
  if (candidates == 0) return 0.0;
  return static_cast<double>(qualifying) / static_cast<double>(candidates);
}

double MaxTupleBreachProbability(const AnatomizedTables& tables) {
  double worst = 0.0;
  for (GroupId g = 0; g < tables.num_groups(); ++g) {
    uint32_t max_count = 0;
    for (const auto& [value, count] : tables.group_histogram(g)) {
      max_count = std::max(max_count, count);
    }
    worst = std::max(
        worst, static_cast<double>(max_count) / tables.group_size(g));
  }
  return worst;
}

}  // namespace anatomy
