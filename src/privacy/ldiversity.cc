#include "privacy/ldiversity.h"

#include <algorithm>
#include <cmath>

namespace anatomy {

namespace {

Status CheckHistogram(const std::vector<std::pair<Code, uint32_t>>& histogram,
                      uint64_t group_size, int l, GroupId g) {
  uint64_t max_count = 0;
  for (const auto& [value, count] : histogram) {
    max_count = std::max<uint64_t>(max_count, count);
  }
  if (max_count * static_cast<uint64_t>(l) > group_size) {
    return Status::FailedPrecondition(
        "group " + std::to_string(g + 1) + " violates " + std::to_string(l) +
        "-diversity (" + std::to_string(max_count) + "/" +
        std::to_string(group_size) + ")");
  }
  return Status::OK();
}

}  // namespace

Status VerifyAnatomizedLDiversity(const AnatomizedTables& tables, int l) {
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  for (GroupId g = 0; g < tables.num_groups(); ++g) {
    ANATOMY_RETURN_IF_ERROR(
        CheckHistogram(tables.group_histogram(g), tables.group_size(g), l, g));
  }
  return Status::OK();
}

Status VerifyGeneralizedLDiversity(const GeneralizedTable& table, int l) {
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  for (GroupId g = 0; g < table.num_groups(); ++g) {
    ANATOMY_RETURN_IF_ERROR(
        CheckHistogram(table.group(g).histogram, table.group(g).size, l, g));
  }
  return Status::OK();
}

bool GroupIsRecursiveClDiverse(
    const std::vector<std::pair<Code, uint32_t>>& histogram, double c, int l) {
  if (static_cast<int>(histogram.size()) < l) return false;
  std::vector<uint32_t> counts;
  counts.reserve(histogram.size());
  for (const auto& [value, count] : histogram) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  uint64_t tail = 0;
  for (size_t i = static_cast<size_t>(l) - 1; i < counts.size(); ++i) {
    tail += counts[i];
  }
  return counts[0] < c * static_cast<double>(tail);
}

Status VerifyRecursiveClDiversity(const AnatomizedTables& tables, double c,
                                  int l) {
  if (l < 2) return Status::InvalidArgument("l must be >= 2");
  if (c <= 0) return Status::InvalidArgument("c must be positive");
  for (GroupId g = 0; g < tables.num_groups(); ++g) {
    if (!GroupIsRecursiveClDiverse(tables.group_histogram(g), c, l)) {
      return Status::FailedPrecondition(
          "group " + std::to_string(g + 1) +
          " is not recursively (c, l)-diverse");
    }
  }
  return Status::OK();
}

bool GroupIsEntropyLDiverse(
    const std::vector<std::pair<Code, uint32_t>>& histogram, double l) {
  if (l <= 0) return false;
  uint64_t total = 0;
  for (const auto& [value, count] : histogram) total += count;
  if (total == 0) return false;
  double entropy = 0.0;
  for (const auto& [value, count] : histogram) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= p * std::log(p);
  }
  // Tiny epsilon absorbs floating-point error for exactly-uniform groups.
  return entropy + 1e-12 >= std::log(l);
}

Status VerifyEntropyLDiversity(const AnatomizedTables& tables, double l) {
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  for (GroupId g = 0; g < tables.num_groups(); ++g) {
    if (!GroupIsEntropyLDiverse(tables.group_histogram(g), l)) {
      return Status::FailedPrecondition(
          "group " + std::to_string(g + 1) + " is not entropy " +
          std::to_string(l) + "-diverse");
    }
  }
  return Status::OK();
}

}  // namespace anatomy
