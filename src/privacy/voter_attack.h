// The Section 3.3 attack analysis: an adversary who is NOT sure the target
// appears in the microdata (assumption A2 dropped) consults an external
// database — a voter registration list (Table 5) — relating QI values to
// identities. The overall breach probability takes the Bayes form of
// Formula 3:
//
//   Pr_A2(target_qi) * Pr_breach(target_s | A2)
//
// Anatomy publishes exact QI values, so the adversary pins down membership
// exactly (Pr_A2 in {0, 1}); generalization leaves several registered persons
// compatible with a cell, diluting Pr_A2 (the paper's 4/5 example). Both
// keep the product below 1/l.

#ifndef ANATOMY_PRIVACY_VOTER_ATTACK_H_
#define ANATOMY_PRIVACY_VOTER_ATTACK_H_

#include <string>
#include <vector>

#include "anatomy/anatomized_tables.h"
#include "common/status.h"
#include "generalization/generalized_table.h"
#include "table/table.h"

namespace anatomy {

/// One registered person: an identity plus QI values aligned with the
/// published tables' QI attributes.
struct RegisteredPerson {
  std::string name;
  std::vector<Code> qi_values;
};

struct AttackOutcome {
  /// Adversary's estimate that the target is in the microdata.
  double pr_in_microdata = 0.0;
  /// Adversary's estimate of the target's sensitive value given membership.
  double pr_breach_given_in = 0.0;

  /// Formula 3.
  double OverallBreach() const { return pr_in_microdata * pr_breach_given_in; }
};

/// Attack against anatomized tables. The adversary counts the QIT tuples
/// matching the target's QI values (f_pub) and the registered persons
/// sharing them (f_reg): each matching tuple belongs to one of those
/// persons, so Pr_A2 = min(1, f_pub / f_reg); the conditional breach is
/// Theorem 1's individual-level probability.
AttackOutcome AttackAnatomized(const AnatomizedTables& tables,
                               const std::vector<RegisteredPerson>& registry,
                               const RegisteredPerson& target,
                               Code real_value);

/// Attack against a generalized table. Candidate tuples are those of groups
/// whose cell contains the target; any registered person inside those cells
/// is equally plausible, so Pr_A2 = min(1, candidate_tuples /
/// compatible_persons) — the paper's 4/5 for Alice.
AttackOutcome AttackGeneralized(const GeneralizedTable& table,
                                const std::vector<RegisteredPerson>& registry,
                                const RegisteredPerson& target,
                                Code real_value);

/// Adapts a voter table whose columns are (Name, QI...) into RegisteredPerson
/// records. The table's columns 1.. must align with the published QIs.
std::vector<RegisteredPerson> RegistryFromTable(const Table& voter_table);

/// Membership-disclosure audit over a whole registry: the adversary's
/// Pr[person is in the microdata] under each publication. This is the
/// quantified form of Section 3.3's observation that anatomy reveals
/// membership exactly (probabilities collapse to 0 or 1) while
/// generalization dilutes them — the price anatomy pays for exact QI
/// release, bounded separately from the 1/l sensitive-value guarantee.
struct MembershipReport {
  std::vector<double> anatomy_pr;         // indexed like the registry
  std::vector<double> generalization_pr;  // ditto

  /// Fraction of registry entries whose membership the publication decides
  /// with certainty (probability 0 or 1).
  static double CertaintyRate(const std::vector<double>& prs);
};

MembershipReport AnalyzeMembership(
    const AnatomizedTables& anatomized, const GeneralizedTable& generalized,
    const std::vector<RegisteredPerson>& registry);

}  // namespace anatomy

#endif  // ANATOMY_PRIVACY_VOTER_ATTACK_H_
