#include "privacy/voter_attack.h"

#include <algorithm>

#include "privacy/breach.h"

namespace anatomy {

std::vector<RegisteredPerson> RegistryFromTable(const Table& voter_table) {
  std::vector<RegisteredPerson> registry;
  registry.reserve(voter_table.num_rows());
  for (RowId r = 0; r < voter_table.num_rows(); ++r) {
    RegisteredPerson person;
    person.name = voter_table.schema().attribute(0).FormatCode(
        voter_table.at(r, 0));
    for (size_t c = 1; c < voter_table.num_columns(); ++c) {
      person.qi_values.push_back(voter_table.at(r, c));
    }
    registry.push_back(std::move(person));
  }
  return registry;
}

AttackOutcome AttackAnatomized(const AnatomizedTables& tables,
                               const std::vector<RegisteredPerson>& registry,
                               const RegisteredPerson& target,
                               Code real_value) {
  AttackOutcome outcome;
  const size_t f_pub = MatchingQitRows(tables, target.qi_values).size();
  size_t f_reg = 0;
  for (const RegisteredPerson& person : registry) {
    if (person.qi_values == target.qi_values) ++f_reg;
  }
  if (f_pub == 0 || f_reg == 0) {
    // No published tuple carries the target's exact QI values: the adversary
    // concludes the target is absent and learns nothing sensitive.
    outcome.pr_in_microdata = 0.0;
    outcome.pr_breach_given_in = 0.0;
    return outcome;
  }
  outcome.pr_in_microdata =
      std::min(1.0, static_cast<double>(f_pub) / static_cast<double>(f_reg));
  outcome.pr_breach_given_in =
      IndividualBreachProbability(tables, target.qi_values, real_value);
  return outcome;
}

AttackOutcome AttackGeneralized(const GeneralizedTable& table,
                                const std::vector<RegisteredPerson>& registry,
                                const RegisteredPerson& target,
                                Code real_value) {
  AttackOutcome outcome;

  auto cell_contains = [&](const GeneralizedGroup& group,
                           const std::vector<Code>& qi) {
    for (size_t i = 0; i < group.extents.size(); ++i) {
      if (!group.extents[i].Contains(qi[i])) return false;
    }
    return true;
  };

  // Groups compatible with the target's QI values.
  uint64_t candidate_tuples = 0;
  std::vector<const GeneralizedGroup*> compatible_groups;
  for (const GeneralizedGroup& group : table.groups()) {
    if (cell_contains(group, target.qi_values)) {
      compatible_groups.push_back(&group);
      candidate_tuples += group.size;
    }
  }
  if (candidate_tuples == 0) {
    return outcome;  // target provably absent
  }
  // Registered persons who could occupy any of those candidate tuples.
  uint64_t compatible_persons = 0;
  for (const RegisteredPerson& person : registry) {
    for (const GeneralizedGroup* group : compatible_groups) {
      if (cell_contains(*group, person.qi_values)) {
        ++compatible_persons;
        break;
      }
    }
  }
  outcome.pr_in_microdata =
      std::min(1.0, static_cast<double>(candidate_tuples) /
                        static_cast<double>(compatible_persons));
  outcome.pr_breach_given_in = GeneralizedIndividualBreachProbability(
      table, target.qi_values, real_value);
  return outcome;
}

double MembershipReport::CertaintyRate(const std::vector<double>& prs) {
  if (prs.empty()) return 0.0;
  size_t certain = 0;
  for (double p : prs) certain += (p == 0.0 || p == 1.0);
  return static_cast<double>(certain) / static_cast<double>(prs.size());
}

MembershipReport AnalyzeMembership(
    const AnatomizedTables& anatomized, const GeneralizedTable& generalized,
    const std::vector<RegisteredPerson>& registry) {
  MembershipReport report;
  report.anatomy_pr.reserve(registry.size());
  report.generalization_pr.reserve(registry.size());
  for (const RegisteredPerson& person : registry) {
    // The sensitive value is irrelevant to Pr_A2; pass code 0.
    report.anatomy_pr.push_back(
        AttackAnatomized(anatomized, registry, person, 0).pr_in_microdata);
    report.generalization_pr.push_back(
        AttackGeneralized(generalized, registry, person, 0).pr_in_microdata);
  }
  return report;
}

}  // namespace anatomy
