// Schema serialization: a small line-oriented text format so published
// artifacts (QIT/ST CSVs) can travel with their schemas and be reloaded
// without recompiling attribute definitions.
//
// Format (one attribute per line, '|'-separated fields):
//
//   # comment / blank lines ignored
//   Age|numerical|78|15|1
//   Sex|categorical|2|F,M
//   Country|categorical|83
//
// numerical:   name|numerical|domain|base|step
// categorical: name|categorical|domain[|label1,label2,...]   (labels optional,
//              must number exactly `domain` when present; commas in labels
//              are escaped as '\,' and backslashes as '\\')

#ifndef ANATOMY_TABLE_SCHEMA_IO_H_
#define ANATOMY_TABLE_SCHEMA_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "table/schema.h"

namespace anatomy {

/// Serializes a schema to the text format above.
std::string SerializeSchema(const Schema& schema);
Status WriteSchemaFile(const Schema& schema, const std::string& path);

/// Parses the text format; validates domains, label counts, steps.
StatusOr<SchemaPtr> ParseSchema(const std::string& text);
StatusOr<SchemaPtr> ReadSchemaFile(const std::string& path);

}  // namespace anatomy

#endif  // ANATOMY_TABLE_SCHEMA_IO_H_
