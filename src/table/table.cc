#include "table/table.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace anatomy {

Table::Table(SchemaPtr schema) : schema_(std::move(schema)) {
  ANATOMY_CHECK(schema_ != nullptr);
  columns_.resize(schema_->num_attributes());
}

void Table::AppendRow(std::span<const Code> row) {
  ANATOMY_CHECK(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    ANATOMY_CHECK_MSG(schema_->CodeInDomain(c, row[c]),
                      schema_->attribute(c).name.c_str());
    columns_[c].push_back(row[c]);
  }
  ++num_rows_;
}

void Table::Reserve(RowId n) {
  for (auto& col : columns_) col.reserve(n);
}

void Table::GetRow(RowId row, std::vector<Code>& out) const {
  out.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) out[c] = columns_[c][row];
}

Table Table::SelectRows(std::span<const RowId> rows) const {
  Table out(schema_);
  out.Reserve(static_cast<RowId>(rows.size()));
  for (size_t c = 0; c < columns_.size(); ++c) {
    auto& dst = out.columns_[c];
    const auto& src = columns_[c];
    for (RowId r : rows) {
      ANATOMY_CHECK(r < num_rows_);
      dst.push_back(src[r]);
    }
  }
  out.num_rows_ = static_cast<RowId>(rows.size());
  return out;
}

Table Table::ProjectColumns(const std::vector<size_t>& cols) const {
  auto schema = std::make_shared<Schema>(schema_->Project(cols));
  Table out(std::move(schema));
  for (size_t i = 0; i < cols.size(); ++i) {
    out.columns_[i] = columns_[cols[i]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

StatusOr<Table> Table::SampleRows(RowId n, Rng& rng) const {
  if (n > num_rows_) {
    return Status::InvalidArgument("sample size exceeds table cardinality");
  }
  std::vector<RowId> rows = rng.SampleWithoutReplacement(num_rows_, n);
  return SelectRows(rows);
}

std::string Table::ToDisplayString(RowId max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) os << "  ";
    os << schema_->attribute(c).name;
  }
  os << "\n";
  const RowId limit = std::min<RowId>(max_rows, num_rows_);
  for (RowId r = 0; r < limit; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << "  ";
      os << schema_->attribute(c).FormatCode(columns_[c][r]);
    }
    os << "\n";
  }
  if (limit < num_rows_) {
    os << "... (" << (num_rows_ - limit) << " more rows)\n";
  }
  return os.str();
}

Status Microdata::Validate() const {
  const size_t ncols = table.schema().num_attributes();
  if (qi_columns.empty()) {
    return Status::InvalidArgument("microdata must have at least one QI attribute");
  }
  std::vector<bool> seen(ncols, false);
  for (size_t c : qi_columns) {
    if (c >= ncols) {
      return Status::InvalidArgument("QI column index out of range");
    }
    if (seen[c]) return Status::InvalidArgument("duplicate QI column");
    seen[c] = true;
  }
  if (sensitive_column >= ncols) {
    return Status::InvalidArgument("sensitive column index out of range");
  }
  if (seen[sensitive_column]) {
    return Status::InvalidArgument(
        "sensitive attribute cannot also be a quasi-identifier");
  }
  return Status::OK();
}

}  // namespace anatomy
