// Columnar in-memory table of attribute codes, plus the Microdata view the
// privacy algorithms operate on (QI attributes + one sensitive attribute).

#ifndef ANATOMY_TABLE_TABLE_H_
#define ANATOMY_TABLE_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/schema.h"

namespace anatomy {

/// Row-count type. Tables up to ~2B rows.
using RowId = uint32_t;

/// Columnar table: one contiguous code vector per attribute. Column-major
/// layout makes the per-attribute scans of Mondrian, the bitmap index build,
/// and statistics cheap.
class Table {
 public:
  Table() = default;
  explicit Table(SchemaPtr schema);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  RowId num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends one row; `row` must have one code per attribute, each in domain.
  /// Codes are CHECKed (appending out-of-domain data is a programming error;
  /// untrusted input is validated by the CSV reader before reaching here).
  void AppendRow(std::span<const Code> row);

  /// Reserves capacity for `n` rows.
  void Reserve(RowId n);

  Code at(RowId row, size_t col) const { return columns_[col][row]; }
  void set(RowId row, size_t col, Code v) { columns_[col][row] = v; }

  const std::vector<Code>& column(size_t col) const { return columns_[col]; }

  /// Copies a row into `out` (resized to num_columns()).
  void GetRow(RowId row, std::vector<Code>& out) const;

  /// New table with only the rows in `rows` (in that order).
  Table SelectRows(std::span<const RowId> rows) const;

  /// New table with only the columns in `cols` (in that order), sharing no
  /// storage; schema is projected accordingly.
  Table ProjectColumns(const std::vector<size_t>& cols) const;

  /// Uniform random sample of `n` rows without replacement; Status error if
  /// n exceeds num_rows().
  StatusOr<Table> SampleRows(RowId n, Rng& rng) const;

  /// Renders the first `max_rows` rows with attribute labels, for examples.
  std::string ToDisplayString(RowId max_rows = 20) const;

 private:
  SchemaPtr schema_;
  std::vector<std::vector<Code>> columns_;
  RowId num_rows_ = 0;
};

/// A microdata table in the paper's sense: d QI attributes followed by the
/// designation of one categorical sensitive attribute A^s. Both index lists
/// refer to columns of `table`.
struct Microdata {
  Table table;
  /// Column indices of the quasi-identifier attributes Aqi_1..Aqi_d.
  std::vector<size_t> qi_columns;
  /// Column index of the sensitive attribute.
  size_t sensitive_column = 0;

  size_t d() const { return qi_columns.size(); }
  RowId n() const { return table.num_rows(); }

  const AttributeDef& qi_attribute(size_t i) const {
    return table.schema().attribute(qi_columns[i]);
  }
  const AttributeDef& sensitive_attribute() const {
    return table.schema().attribute(sensitive_column);
  }

  Code qi_value(RowId row, size_t i) const {
    return table.at(row, qi_columns[i]);
  }
  Code sensitive_value(RowId row) const {
    return table.at(row, sensitive_column);
  }

  /// Validates the column designations against the schema: indices in range,
  /// no duplicates, sensitive attribute not among the QIs.
  Status Validate() const;
};

}  // namespace anatomy

#endif  // ANATOMY_TABLE_TABLE_H_
