// Relational schema for microdata tables.
//
// Following the paper (Section 3), every attribute is discrete: numerical
// attributes are dense integer codes with an affine mapping to their real
// values (e.g. Age code 0 -> 15 years), and categorical attributes are codes
// with optional string labels. A total ordering on codes is assumed for all
// attributes (paper footnote 2), which is what multidimensional
// generalization partitions on.

#ifndef ANATOMY_TABLE_SCHEMA_H_
#define ANATOMY_TABLE_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace anatomy {

/// Attribute code type. All cell values are codes in [0, domain_size).
using Code = int32_t;

enum class AttributeKind {
  kNumerical,    // codes map affinely to numbers (Age, Education years)
  kCategorical,  // codes are category ids with labels (Sex, Country, Disease)
};

/// Static description of one attribute.
struct AttributeDef {
  std::string name;
  AttributeKind kind = AttributeKind::kCategorical;
  /// Number of distinct codes; the domain is [0, domain_size).
  Code domain_size = 0;
  /// For numerical attributes: real value = numeric_base + code * numeric_step.
  int64_t numeric_base = 0;
  int64_t numeric_step = 1;
  /// Optional labels, one per code (categorical attributes). May be empty, in
  /// which case codes print as integers.
  std::vector<std::string> labels;

  /// Human-readable form of a code ("M", "flu", or "23").
  std::string FormatCode(Code code) const;
};

/// An immutable ordered collection of attributes. Shared by tables derived
/// from the same microdata (projections, samples, anatomized outputs).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or NotFound.
  StatusOr<size_t> FindAttribute(const std::string& name) const;

  /// New schema keeping only `indices`, in order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// Validates a code for attribute `i`.
  bool CodeInDomain(size_t i, Code code) const {
    return code >= 0 && code < attributes_[i].domain_size;
  }

 private:
  std::vector<AttributeDef> attributes_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Convenience builder for an unlabeled categorical attribute.
AttributeDef MakeCategorical(std::string name, Code domain_size);

/// Convenience builder for a labeled categorical attribute;
/// domain size = labels.size().
AttributeDef MakeLabeled(std::string name, std::vector<std::string> labels);

/// Convenience builder for a numerical attribute with `domain_size` codes
/// mapping to base, base+step, ...
AttributeDef MakeNumerical(std::string name, Code domain_size,
                           int64_t base = 0, int64_t step = 1);

}  // namespace anatomy

#endif  // ANATOMY_TABLE_SCHEMA_H_
