#include "table/schema_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace anatomy {

namespace {

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c == '\\' || c == ',') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Splits a label list on unescaped commas and unescapes the pieces.
std::vector<std::string> SplitLabels(const std::string& text) {
  std::vector<std::string> labels;
  std::string current;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      current.push_back(c);
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == ',') {
      labels.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  labels.push_back(current);
  return labels;
}

StatusOr<int64_t> ParseInt(const std::string& text, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("bad " + what + " '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

std::string SerializeSchema(const Schema& schema) {
  std::ostringstream os;
  os << "# anatomy schema v1: name|kind|domain[|...]\n";
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeDef& attr = schema.attribute(i);
    os << attr.name << '|';
    if (attr.kind == AttributeKind::kNumerical) {
      os << "numerical|" << attr.domain_size << '|' << attr.numeric_base << '|'
         << attr.numeric_step;
    } else {
      os << "categorical|" << attr.domain_size;
      if (!attr.labels.empty()) {
        os << '|';
        for (size_t l = 0; l < attr.labels.size(); ++l) {
          if (l > 0) os << ',';
          os << EscapeLabel(attr.labels[l]);
        }
      }
    }
    os << '\n';
  }
  return os.str();
}

Status WriteSchemaFile(const Schema& schema, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open '" + path + "' for writing");
  os << SerializeSchema(schema);
  if (!os) return Status::Internal("schema write failed");
  return Status::OK();
}

StatusOr<SchemaPtr> ParseSchema(const std::string& text) {
  std::vector<AttributeDef> defs;
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, '|');
    if (fields.size() < 3) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected name|kind|domain");
    }
    const std::string& name = fields[0];
    if (name.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty attribute name");
    }
    ANATOMY_ASSIGN_OR_RETURN(const int64_t domain,
                             ParseInt(fields[2], "domain"));
    if (domain <= 0 || domain > (int64_t{1} << 30)) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": domain out of range");
    }
    const std::string kind = ToLower(fields[1]);
    if (kind == "numerical") {
      if (fields.size() != 5) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": numerical needs name|numerical|domain|base|step");
      }
      ANATOMY_ASSIGN_OR_RETURN(const int64_t base, ParseInt(fields[3], "base"));
      ANATOMY_ASSIGN_OR_RETURN(const int64_t step, ParseInt(fields[4], "step"));
      if (step == 0) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": step must be non-zero");
      }
      defs.push_back(MakeNumerical(name, static_cast<Code>(domain), base, step));
    } else if (kind == "categorical") {
      if (fields.size() == 3) {
        defs.push_back(MakeCategorical(name, static_cast<Code>(domain)));
      } else if (fields.size() == 4) {
        std::vector<std::string> labels = SplitLabels(fields[3]);
        if (labels.size() != static_cast<size_t>(domain)) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": " +
              std::to_string(labels.size()) + " labels for domain " +
              std::to_string(domain));
        }
        defs.push_back(MakeLabeled(name, std::move(labels)));
      } else {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": categorical needs name|categorical|domain[|labels]");
      }
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown kind '" + fields[1] + "'");
    }
  }
  if (defs.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  return SchemaPtr(std::make_shared<const Schema>(std::move(defs)));
}

StatusOr<SchemaPtr> ReadSchemaFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return ParseSchema(buffer.str());
}

}  // namespace anatomy
