#include "table/schema.h"

#include "common/check.h"

namespace anatomy {

std::string AttributeDef::FormatCode(Code code) const {
  if (!labels.empty()) {
    ANATOMY_CHECK(code >= 0 && static_cast<size_t>(code) < labels.size());
    return labels[code];
  }
  if (kind == AttributeKind::kNumerical) {
    return std::to_string(numeric_base + static_cast<int64_t>(code) * numeric_step);
  }
  return std::to_string(code);
}

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (const auto& a : attributes_) {
    ANATOMY_CHECK_MSG(a.domain_size > 0, a.name.c_str());
    if (!a.labels.empty()) {
      ANATOMY_CHECK_MSG(
          a.labels.size() == static_cast<size_t>(a.domain_size),
          a.name.c_str());
    }
  }
}

StatusOr<size_t> Schema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<AttributeDef> defs;
  defs.reserve(indices.size());
  for (size_t i : indices) {
    ANATOMY_CHECK(i < attributes_.size());
    defs.push_back(attributes_[i]);
  }
  return Schema(std::move(defs));
}

AttributeDef MakeCategorical(std::string name, Code domain_size) {
  AttributeDef def;
  def.name = std::move(name);
  def.kind = AttributeKind::kCategorical;
  def.domain_size = domain_size;
  return def;
}

AttributeDef MakeLabeled(std::string name, std::vector<std::string> labels) {
  AttributeDef def;
  def.name = std::move(name);
  def.kind = AttributeKind::kCategorical;
  def.domain_size = static_cast<Code>(labels.size());
  def.labels = std::move(labels);
  return def;
}

AttributeDef MakeNumerical(std::string name, Code domain_size, int64_t base,
                           int64_t step) {
  AttributeDef def;
  def.name = std::move(name);
  def.kind = AttributeKind::kNumerical;
  def.domain_size = domain_size;
  def.numeric_base = base;
  def.numeric_step = step;
  return def;
}

}  // namespace anatomy
