// Column statistics: histograms, most-frequent counts (the eligibility
// condition's input), and mutual information (used to verify the synthetic
// CENSUS generator actually produces correlated attributes — the property the
// paper's accuracy gap depends on).

#ifndef ANATOMY_TABLE_STATS_H_
#define ANATOMY_TABLE_STATS_H_

#include <cstdint>
#include <vector>

#include "table/table.h"

namespace anatomy {

/// Frequency of each code of column `col` (indexed by code).
std::vector<uint32_t> ColumnHistogram(const Table& table, size_t col);

/// Count of the most frequent code in `col`.
uint32_t MaxFrequency(const Table& table, size_t col);

/// Number of codes of `col` that occur at least once.
uint32_t DistinctCount(const Table& table, size_t col);

/// Shannon entropy (bits) of the empirical distribution of column `col`.
double ColumnEntropy(const Table& table, size_t col);

/// Mutual information (bits) between two columns' empirical distributions.
/// Zero iff the columns are empirically independent.
double MutualInformation(const Table& table, size_t col_a, size_t col_b);

}  // namespace anatomy

#endif  // ANATOMY_TABLE_STATS_H_
