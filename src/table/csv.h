// CSV import/export for tables.
//
// Export writes a header row of attribute names and formats codes through the
// schema (labels for categorical, real values for numerical). Import parses
// against a caller-supplied schema, mapping labels (or numbers) back to codes
// and validating domains, so downstream code never sees out-of-domain values.

#ifndef ANATOMY_TABLE_CSV_H_
#define ANATOMY_TABLE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "table/table.h"

namespace anatomy {

struct CsvOptions {
  char delimiter = ',';
  /// Write/expect a header row of attribute names.
  bool header = true;
};

/// Writes `table` as CSV.
Status WriteCsv(const Table& table, std::ostream& os,
                const CsvOptions& options = {});
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Reads a CSV stream into a table with the given schema. Field values may be
/// labels (for labeled attributes) or integers; integers are interpreted as
/// real values for numerical attributes (inverse of the affine mapping) and
/// as raw codes otherwise.
StatusOr<Table> ReadCsv(SchemaPtr schema, std::istream& is,
                        const CsvOptions& options = {});
StatusOr<Table> ReadCsvFile(SchemaPtr schema, const std::string& path,
                            const CsvOptions& options = {});

}  // namespace anatomy

#endif  // ANATOMY_TABLE_CSV_H_
