#include "table/stats.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace anatomy {

std::vector<uint32_t> ColumnHistogram(const Table& table, size_t col) {
  ANATOMY_CHECK(col < table.num_columns());
  std::vector<uint32_t> hist(table.schema().attribute(col).domain_size, 0);
  for (Code v : table.column(col)) ++hist[v];
  return hist;
}

uint32_t MaxFrequency(const Table& table, size_t col) {
  uint32_t best = 0;
  for (uint32_t c : ColumnHistogram(table, col)) best = std::max(best, c);
  return best;
}

uint32_t DistinctCount(const Table& table, size_t col) {
  uint32_t distinct = 0;
  for (uint32_t c : ColumnHistogram(table, col)) distinct += (c > 0);
  return distinct;
}

double ColumnEntropy(const Table& table, size_t col) {
  const double n = table.num_rows();
  if (n == 0) return 0.0;
  double h = 0.0;
  for (uint32_t c : ColumnHistogram(table, col)) {
    if (c == 0) continue;
    const double p = c / n;
    h -= p * std::log2(p);
  }
  return h;
}

double MutualInformation(const Table& table, size_t col_a, size_t col_b) {
  ANATOMY_CHECK(col_a < table.num_columns());
  ANATOMY_CHECK(col_b < table.num_columns());
  const double n = table.num_rows();
  if (n == 0) return 0.0;

  const Code da = table.schema().attribute(col_a).domain_size;
  const auto& a = table.column(col_a);
  const auto& b = table.column(col_b);
  std::unordered_map<int64_t, uint32_t> joint;
  joint.reserve(table.num_rows() / 4 + 16);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    joint[static_cast<int64_t>(b[r]) * da + a[r]]++;
  }
  const std::vector<uint32_t> ha = ColumnHistogram(table, col_a);
  const std::vector<uint32_t> hb = ColumnHistogram(table, col_b);

  double mi = 0.0;
  for (const auto& [key, cnt] : joint) {
    const Code va = static_cast<Code>(key % da);
    const Code vb = static_cast<Code>(key / da);
    const double pxy = cnt / n;
    const double px = ha[va] / n;
    const double py = hb[vb] / n;
    mi += pxy * std::log2(pxy / (px * py));
  }
  // Clamp tiny negative values from floating-point cancellation.
  return mi < 0 ? 0.0 : mi;
}

}  // namespace anatomy
