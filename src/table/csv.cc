#include "table/csv.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace anatomy {

Status WriteCsv(const Table& table, std::ostream& os,
                const CsvOptions& options) {
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) os << options.delimiter;
      os << schema.attribute(c).name;
    }
    os << "\n";
  }
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) os << options.delimiter;
      os << schema.attribute(c).FormatCode(table.at(r, c));
    }
    os << "\n";
  }
  if (!os) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  // Write-to-temp + rename so a crash or write failure never leaves a
  // truncated file at `path`: readers see either the old content or the
  // complete new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) return Status::NotFound("cannot open '" + tmp + "' for writing");
    const Status status = WriteCsv(table, os, options);
    if (!status.ok()) {
      os.close();
      std::remove(tmp.c_str());
      return status;
    }
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      return Status::Internal("flush of '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename of '" + tmp + "' to '" + path +
                            "' failed");
  }
  return Status::OK();
}

namespace {

/// Per-attribute decoder from CSV field text to a code.
class FieldDecoder {
 public:
  explicit FieldDecoder(const AttributeDef& def) : def_(&def) {
    for (size_t i = 0; i < def.labels.size(); ++i) {
      label_to_code_[def.labels[i]] = static_cast<Code>(i);
    }
  }

  StatusOr<Code> Decode(std::string_view field, size_t line) const {
    std::string text(Trim(field));
    if (!label_to_code_.empty()) {
      auto it = label_to_code_.find(text);
      if (it != label_to_code_.end()) return it->second;
      // Fall through: allow numeric codes even for labeled attributes.
    }
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("line " + std::to_string(line) +
                                     ": cannot parse '" + text + "' for " +
                                     def_->name);
    }
    long long code = parsed;
    if (def_->kind == AttributeKind::kNumerical) {
      const long long offset = parsed - def_->numeric_base;
      if (def_->numeric_step == 0 || offset % def_->numeric_step != 0) {
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": value " + text +
                                       " not on the grid of " + def_->name);
      }
      code = offset / def_->numeric_step;
    }
    if (code < 0 || code >= def_->domain_size) {
      return Status::OutOfRange("line " + std::to_string(line) + ": value " +
                                text + " outside the domain of " + def_->name);
    }
    return static_cast<Code>(code);
  }

 private:
  const AttributeDef* def_;
  std::map<std::string, Code> label_to_code_;
};

}  // namespace

StatusOr<Table> ReadCsv(SchemaPtr schema, std::istream& is,
                        const CsvOptions& options) {
  Table table(schema);
  std::vector<FieldDecoder> decoders;
  decoders.reserve(schema->num_attributes());
  for (size_t c = 0; c < schema->num_attributes(); ++c) {
    decoders.emplace_back(schema->attribute(c));
  }

  std::string line;
  size_t line_no = 0;
  bool skip_header = options.header;
  std::vector<Code> row(schema->num_attributes());
  while (std::getline(is, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    std::vector<std::string> fields = Split(line, options.delimiter);
    if (fields.size() != schema->num_attributes()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(schema->num_attributes()) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      ANATOMY_ASSIGN_OR_RETURN(row[c], decoders[c].Decode(fields[c], line_no));
    }
    table.AppendRow(row);
  }
  return table;
}

StatusOr<Table> ReadCsvFile(SchemaPtr schema, const std::string& path,
                            const CsvOptions& options) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  return ReadCsv(std::move(schema), is, options);
}

}  // namespace anatomy
