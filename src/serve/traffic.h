// Open-loop traffic generation for anatomy_serve.
//
// Each tenant class is an independent Poisson arrival process over one
// publication: inter-arrival gaps are exponential draws from the class's
// own Rng stream (Rng::ForStream(seed, stream) — replay of one class never
// depends on another's history), and the query bodies come from a
// MixedWorkloadGenerator (Section 6.1 predicate shape, COUNT/SUM mix).
// Open-loop means arrivals NEVER wait for completions: the schedule is
// fixed by the seed alone, so a slow server builds queueing delay instead
// of silently thinning the offered load — the failure mode closed-loop
// generators hide (coordinated omission).
//
// The generator merges the per-class streams into one global
// arrival-ordered sequence in VIRTUAL time. Nothing sleeps; the serve loop
// (server.h) advances its clock to each arrival and does the queueing
// arithmetic itself.

#ifndef ANATOMY_SERVE_TRAFFIC_H_
#define ANATOMY_SERVE_TRAFFIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "query/aggregate.h"
#include "serve/catalog.h"
#include "workload/workload.h"

namespace anatomy {
namespace serve {

struct TenantTrafficClass {
  /// Session this class's requests run as (must match a server tenant).
  std::string tenant;
  /// Catalog publication the class queries.
  std::string publication;
  /// Mean arrival rate, in queries per virtual second.
  double rate_qps = 1000.0;
  /// COUNT/SUM mix and predicate shape for this class's query bodies.
  double sum_fraction = 0.5;
  double selectivity = 0.05;
  /// 0 resolves to "all QI attributes" (WorkloadOptions::qd).
  int qd = 0;
};

/// One arrival in the merged schedule.
struct TrafficRequest {
  uint64_t arrival_ns = 0;
  /// Index into the class list the generator was built from.
  size_t class_index = 0;
  AggregateQuery query;
};

struct TrafficOptions {
  std::vector<TenantTrafficClass> classes;
  /// Master seed; class i draws from streams split off it.
  uint64_t seed = 1;
};

/// K-way merge of the per-class Poisson streams. Deterministic: the full
/// request sequence is a pure function of (options, class microdata).
class TrafficGenerator {
 public:
  /// `catalog` supplies each class's microdata (for predicate domains) and
  /// must outlive the generator. Fails if a class names an unknown
  /// publication or has a non-positive rate.
  static StatusOr<TrafficGenerator> Create(const TrafficOptions& options,
                                           PublicationCatalog* catalog);

  /// The next arrival in global virtual-time order. Ties break by class
  /// index, so the merge is total and replayable.
  TrafficRequest Next();

  size_t num_classes() const { return lanes_.size(); }

 private:
  struct Lane {
    TenantTrafficClass spec;
    std::unique_ptr<MixedWorkloadGenerator> queries;
    Rng arrivals;
    /// Virtual arrival time of this lane's next (already drawn) request.
    uint64_t next_arrival_ns = 0;
  };

  explicit TrafficGenerator(std::vector<Lane> lanes);
  static uint64_t DrawGapNs(Rng& rng, double rate_qps);

  std::vector<Lane> lanes_;
};

}  // namespace serve
}  // namespace anatomy

#endif  // ANATOMY_SERVE_TRAFFIC_H_
