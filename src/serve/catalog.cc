#include "serve/catalog.h"

#include <utility>

namespace anatomy {
namespace serve {

ServePublication::ServePublication(const ServePublicationOptions& options,
                                   Microdata md)
    : options_(options), microdata_(std::move(md)) {
  DistClusterOptions copts;
  copts.nodes = options_.nodes;
  copts.l = options_.l;
  copts.seed = options_.seed;
  cluster_ = std::make_unique<DistCluster>(copts);
  estimator_ =
      std::make_unique<ScatterGatherEstimator>(cluster_.get(), options_.query);
}

StatusOr<EpochPublishReport> ServePublication::RepublishEpoch(
    const Microdata* fresh, SwapKillPoint kill) {
  if (fresh != nullptr) {
    // Swap the catalog's microdata only after the cluster accepted it: a
    // failed publish leaves both the fleet and the catalog on the old epoch.
    auto report = cluster_->PublishEpoch(*fresh, kill);
    if (report.ok()) microdata_ = *fresh;
    return report;
  }
  return cluster_->PublishEpoch(microdata_, kill);
}

StatusOr<ServePublication*> PublicationCatalog::Add(
    const ServePublicationOptions& options, Microdata md) {
  if (options.name.empty()) {
    return Status::InvalidArgument("publication name must not be empty");
  }
  if (Find(options.name) != nullptr) {
    return Status::InvalidArgument("duplicate publication name '" +
                                   options.name + "'");
  }
  auto pub = std::unique_ptr<ServePublication>(
      new ServePublication(options, std::move(md)));
  auto report = pub->cluster()->PublishEpoch(pub->microdata());
  if (!report.ok()) {
    return Status(report.status().code(),
                  "initial publish of '" + options.name +
                      "' failed: " + report.status().message());
  }
  publications_.push_back(std::move(pub));
  return publications_.back().get();
}

ServePublication* PublicationCatalog::Find(const std::string& name) {
  for (const auto& pub : publications_) {
    if (pub->name() == name) return pub.get();
  }
  return nullptr;
}

std::vector<std::string> PublicationCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(publications_.size());
  for (const auto& pub : publications_) names.push_back(pub->name());
  return names;
}

}  // namespace serve
}  // namespace anatomy
