#include "serve/traffic.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace anatomy {
namespace serve {

uint64_t TrafficGenerator::DrawGapNs(Rng& rng, double rate_qps) {
  // Exponential inter-arrival: -ln(1-U)/rate seconds. NextDouble() is in
  // [0, 1), so 1-U is in (0, 1] and the log is finite.
  const double gap_s = -std::log(1.0 - rng.NextDouble()) / rate_qps;
  return static_cast<uint64_t>(gap_s * 1e9);
}

TrafficGenerator::TrafficGenerator(std::vector<Lane> lanes)
    : lanes_(std::move(lanes)) {}

StatusOr<TrafficGenerator> TrafficGenerator::Create(
    const TrafficOptions& options, PublicationCatalog* catalog) {
  if (options.classes.empty()) {
    return Status::InvalidArgument("traffic needs at least one tenant class");
  }
  std::vector<Lane> lanes;
  lanes.reserve(options.classes.size());
  for (size_t i = 0; i < options.classes.size(); ++i) {
    const TenantTrafficClass& spec = options.classes[i];
    if (!(spec.rate_qps > 0.0)) {
      return Status::InvalidArgument("class " + std::to_string(i) +
                                     " rate_qps must be positive");
    }
    ServePublication* pub = catalog->Find(spec.publication);
    if (pub == nullptr) {
      return Status::InvalidArgument("class " + std::to_string(i) +
                                     " names unknown publication '" +
                                     spec.publication + "'");
    }
    MixedWorkloadOptions wopts;
    wopts.base.qd = spec.qd;
    wopts.base.s = spec.selectivity;
    // Two streams per lane, split off the master seed: 2i for query bodies,
    // 2i+1 for arrival gaps. Adding a lane never perturbs existing lanes.
    wopts.base.seed = SplitMix64(options.seed ^ (2 * i));
    wopts.sum_fraction = spec.sum_fraction;
    auto gen = MixedWorkloadGenerator::Create(pub->microdata(), wopts);
    if (!gen.ok()) {
      return Status(gen.status().code(), "class " + std::to_string(i) + ": " +
                                             gen.status().message());
    }
    Lane lane{spec,
              std::make_unique<MixedWorkloadGenerator>(std::move(gen).value()),
              Rng::ForStream(options.seed, 2 * i + 1),
              /*next_arrival_ns=*/0};
    lane.next_arrival_ns = DrawGapNs(lane.arrivals, spec.rate_qps);
    lanes.push_back(std::move(lane));
  }
  return TrafficGenerator(std::move(lanes));
}

TrafficRequest TrafficGenerator::Next() {
  ANATOMY_CHECK(!lanes_.empty());
  size_t best = 0;
  for (size_t i = 1; i < lanes_.size(); ++i) {
    if (lanes_[i].next_arrival_ns < lanes_[best].next_arrival_ns) best = i;
  }
  Lane& lane = lanes_[best];
  TrafficRequest req;
  req.arrival_ns = lane.next_arrival_ns;
  req.class_index = best;
  req.query = lane.queries->Next();
  lane.next_arrival_ns += DrawGapNs(lane.arrivals, lane.spec.rate_qps);
  return req;
}

}  // namespace serve
}  // namespace anatomy
