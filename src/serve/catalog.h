// PublicationCatalog: the named-publication registry behind anatomy_serve.
//
// Each catalog entry is one (dataset, l) publication served by its own
// DistCluster — per-node crash-consistent StorageManifest chains, the
// two-phase PREPARE/COMMIT epoch swap, and a ScatterGatherEstimator with
// deadlines/hedging/honest degradation. The catalog is what turns the
// batch pipeline into a multi-tenant serving surface: several datasets and
// l values live side by side, each republishing on its own schedule.
//
// Copy-on-write epoch swaps: RepublishEpoch runs the cluster's two-phase
// swap, during which the previous epoch's publication keeps serving — the
// PREPARE phase writes the new shard publications NEXT TO the old ones,
// and only the single COMMIT page write flips the fleet. The serve loop
// (src/serve/server.h) models the rebuild as a virtual-time window of
// RebuildWindowNs() on a publisher lane; queries arriving inside the
// window are answered by the old epoch with their normal latency — never
// blocked on the rebuild (asserted by bench_serve).

#ifndef ANATOMY_SERVE_CATALOG_H_
#define ANATOMY_SERVE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "dist/scatter_gather.h"
#include "table/table.h"

namespace anatomy {
namespace serve {

struct ServePublicationOptions {
  /// Catalog key; also the label on this publication's metrics
  /// (serve.pub.<name>.*). Must be non-empty and unique in the catalog.
  std::string name;
  /// Storage nodes of this publication's cluster.
  size_t nodes = 2;
  int l = 4;
  uint64_t seed = 1;
  /// Deadline/hedging/retry policy of this publication's queries.
  DistQueryOptions query;
  /// Virtual-time cost model of one epoch rebuild (the COW swap window the
  /// serve loop charges on the publisher lane): floor + ns_per_row * rows.
  uint64_t rebuild_floor_ns = 2'000'000;
  uint64_t rebuild_ns_per_row = 400;
};

/// One named publication: a cluster, its estimator, and the microdata the
/// current epoch was anatomized from. Construction is via
/// PublicationCatalog::Add only.
class ServePublication {
 public:
  ServePublication(const ServePublication&) = delete;
  ServePublication& operator=(const ServePublication&) = delete;

  const std::string& name() const { return options_.name; }
  int l() const { return options_.l; }
  uint64_t epoch() const { return cluster_->epoch(); }
  uint64_t total_rows() const { return cluster_->total_rows(); }
  DistCluster* cluster() { return cluster_.get(); }
  ScatterGatherEstimator* estimator() { return estimator_.get(); }
  const Microdata& microdata() const { return microdata_; }
  const ServePublicationOptions& options() const { return options_; }

  /// Virtual width of the COW swap window for this publication's current
  /// row count.
  uint64_t RebuildWindowNs() const {
    return options_.rebuild_floor_ns +
           options_.rebuild_ns_per_row * microdata_.table.num_rows();
  }

  /// Two-phase COW epoch swap (see dist/cluster.h). Republishes the
  /// current microdata when `fresh` is null (a Section-7 re-anatomization:
  /// the per-epoch seed derivation gives a new partition), or swaps in new
  /// microdata. On any failure the old epoch keeps serving.
  StatusOr<EpochPublishReport> RepublishEpoch(
      const Microdata* fresh = nullptr,
      SwapKillPoint kill = SwapKillPoint::kNone);

 private:
  friend class PublicationCatalog;
  ServePublication(const ServePublicationOptions& options, Microdata md);

  ServePublicationOptions options_;
  Microdata microdata_;
  std::unique_ptr<DistCluster> cluster_;
  std::unique_ptr<ScatterGatherEstimator> estimator_;
};

/// Insertion-ordered registry of named publications. Not thread-safe: the
/// serve loop drives it from one simulation thread.
class PublicationCatalog {
 public:
  PublicationCatalog() = default;
  PublicationCatalog(const PublicationCatalog&) = delete;
  PublicationCatalog& operator=(const PublicationCatalog&) = delete;

  /// Builds the cluster and publishes epoch 1 from `md`. Fails on duplicate
  /// or empty names, or if the initial publish fails (the entry is not
  /// added).
  StatusOr<ServePublication*> Add(const ServePublicationOptions& options,
                                  Microdata md);

  /// nullptr when the name is not in the catalog.
  ServePublication* Find(const std::string& name);

  size_t size() const { return publications_.size(); }
  ServePublication* at(size_t i) { return publications_[i].get(); }
  std::vector<std::string> Names() const;

 private:
  std::vector<std::unique_ptr<ServePublication>> publications_;
};

}  // namespace serve
}  // namespace anatomy

#endif  // ANATOMY_SERVE_CATALOG_H_
