// Per-tenant sessions and access policy for anatomy_serve.
//
// A Session binds a tenant's access level to the catalog and is the only
// query path the server exposes: every request is checked against the
// tenant's TenantPolicy before it reaches a ScatterGatherEstimator. A
// denial is a typed Status (kPermissionDenied) carrying a precise
// obs::ReasonCode — the same by-value vocabulary the degradation ladder
// and chaos assertions use — and every denial is logged to the flight
// recorder as a kAccessDenied event, so "why was tenant X refused" is
// answered by value-matching recorder events, never by parsing messages.
//
// Policy axes, least to most Anatomy-specific:
//   * publications — allowlist of catalog names. A name outside the
//     allowlist denies with kAccessDeniedPublication whether or not the
//     publication exists: the policy check runs before the catalog lookup,
//     so denials leak no catalog-membership oracle.
//   * columns — QI columns the tenant may not touch, as predicates or as a
//     SUM measure (kAccessDeniedColumn).
//   * aggregates — COUNT/SUM allow bits (kAccessDeniedAggregate).
//   * epoch budget — max distinct republication epochs a session may
//     observe per publication (kEpochBudgetExceeded). Each republication
//     re-partitions the same individuals into different QI-groups; an
//     algorithm-aware adversary correlating answers across epochs learns
//     more than any single publication reveals (the multi-publication
//     attack surface of Transparent Anonymization, PAPERS.md), so the
//     policy can cap how many epochs one session gets to see.

#ifndef ANATOMY_SERVE_SESSION_H_
#define ANATOMY_SERVE_SESSION_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/scatter_gather.h"
#include "obs/flightrec.h"
#include "query/aggregate.h"
#include "serve/catalog.h"

namespace anatomy {
namespace serve {

struct TenantPolicy {
  /// Catalog names this tenant may query. Empty = nothing (deny-all).
  std::vector<std::string> publications;
  bool allow_count = true;
  bool allow_sum = true;
  /// QI indices this tenant may not reference (predicate or SUM measure).
  std::vector<size_t> denied_qi_columns;
  /// Max distinct epochs observable per publication; 0 = unlimited.
  uint64_t epoch_budget = 0;

  bool AllowsPublication(const std::string& name) const;
  bool DeniesColumn(size_t qi_index) const;
};

/// Running denial/answer counters, exposed on the session for reports.
struct SessionStats {
  uint64_t answered = 0;
  uint64_t denied = 0;
  uint64_t errors = 0;
};

/// One tenant's handle onto the catalog. Not thread-safe (the serve loop
/// owns it); `catalog` must outlive the session.
class Session {
 public:
  Session(std::string tenant, TenantPolicy policy, PublicationCatalog* catalog,
          obs::FlightRecorder* recorder = &obs::FlightRecorder::Global());

  const std::string& tenant() const { return tenant_; }
  const TenantPolicy& policy() const { return policy_; }
  const SessionStats& stats() const { return stats_; }

  /// Policy check, then estimator fan-out. Denials return kPermissionDenied
  /// and set last_denial(); catalog misses (allowed name, no publication)
  /// return kNotFound; estimator failures pass through. `now_ns` stamps the
  /// flight events with the serve loop's virtual clock.
  StatusOr<PartialEstimate> Query(const std::string& publication,
                                  const AggregateQuery& query,
                                  uint64_t now_ns = 0);

  /// Reason of the most recent denial (kNone if the last Query was not
  /// denied). Tests assert these by value.
  obs::ReasonCode last_denial() const { return last_denial_; }

  /// Distinct epochs this session has observed of `publication` so far.
  uint64_t EpochsObserved(const std::string& publication) const;

 private:
  /// kNone when the policy admits the request; otherwise the denial code.
  obs::ReasonCode CheckPolicy(const std::string& publication,
                              const AggregateQuery& query) const;
  void LogDenial(obs::ReasonCode reason, uint64_t now_ns, int64_t detail);

  std::string tenant_;
  TenantPolicy policy_;
  PublicationCatalog* catalog_;
  obs::FlightRecorder* recorder_;
  SessionStats stats_;
  obs::ReasonCode last_denial_ = obs::ReasonCode::kNone;
  /// (publication, epoch) pairs already observed, for the epoch budget.
  std::set<std::pair<std::string, uint64_t>> observed_epochs_;
};

}  // namespace serve
}  // namespace anatomy

#endif  // ANATOMY_SERVE_SESSION_H_
