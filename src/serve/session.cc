#include "serve/session.h"

#include <algorithm>
#include <utility>

namespace anatomy {
namespace serve {

bool TenantPolicy::AllowsPublication(const std::string& name) const {
  return std::find(publications.begin(), publications.end(), name) !=
         publications.end();
}

bool TenantPolicy::DeniesColumn(size_t qi_index) const {
  return std::find(denied_qi_columns.begin(), denied_qi_columns.end(),
                   qi_index) != denied_qi_columns.end();
}

Session::Session(std::string tenant, TenantPolicy policy,
                 PublicationCatalog* catalog, obs::FlightRecorder* recorder)
    : tenant_(std::move(tenant)),
      policy_(std::move(policy)),
      catalog_(catalog),
      recorder_(recorder) {}

obs::ReasonCode Session::CheckPolicy(const std::string& publication,
                                     const AggregateQuery& query) const {
  if (!policy_.AllowsPublication(publication)) {
    return obs::ReasonCode::kAccessDeniedPublication;
  }
  switch (query.kind) {
    case AggregateKind::kCount:
      if (!policy_.allow_count) return obs::ReasonCode::kAccessDeniedAggregate;
      break;
    case AggregateKind::kSum:
      if (!policy_.allow_sum) return obs::ReasonCode::kAccessDeniedAggregate;
      if (policy_.DeniesColumn(query.measure_qi)) {
        return obs::ReasonCode::kAccessDeniedColumn;
      }
      break;
    case AggregateKind::kAvg:
      // The estimator rejects AVG anyway; policy-wise it needs both bits.
      if (!policy_.allow_count || !policy_.allow_sum) {
        return obs::ReasonCode::kAccessDeniedAggregate;
      }
      break;
  }
  for (const AttributePredicate& pred : query.predicates.qi_predicates) {
    if (policy_.DeniesColumn(pred.qi_index())) {
      return obs::ReasonCode::kAccessDeniedColumn;
    }
  }
  return obs::ReasonCode::kNone;
}

void Session::LogDenial(obs::ReasonCode reason, uint64_t now_ns,
                        int64_t detail) {
  last_denial_ = reason;
  ++stats_.denied;
  obs::FlightRecord rec;
  rec.t_ns = now_ns;
  rec.type = obs::FlightEventType::kAccessDenied;
  rec.reason = reason;
  rec.detail = detail;
  recorder_->Log(rec);
}

uint64_t Session::EpochsObserved(const std::string& publication) const {
  uint64_t count = 0;
  for (const auto& [name, epoch] : observed_epochs_) {
    if (name == publication) ++count;
  }
  return count;
}

StatusOr<PartialEstimate> Session::Query(const std::string& publication,
                                         const AggregateQuery& query,
                                         uint64_t now_ns) {
  last_denial_ = obs::ReasonCode::kNone;
  const obs::ReasonCode denial = CheckPolicy(publication, query);
  if (denial != obs::ReasonCode::kNone) {
    LogDenial(denial, now_ns, /*detail=*/0);
    return Status::PermissionDenied(
        "tenant '" + tenant_ + "' denied on '" + publication +
        "': " + obs::ReasonCodeName(denial));
  }
  ServePublication* pub = catalog_->Find(publication);
  if (pub == nullptr) {
    // Allowed by policy but absent from the catalog: an operational error,
    // not a denial (the policy check above already refused outsiders, so
    // this path leaks nothing they could not learn from their own policy).
    ++stats_.errors;
    return Status::NotFound("publication '" + publication +
                            "' is not in the catalog");
  }
  const uint64_t epoch = pub->epoch();
  const auto key = std::make_pair(publication, epoch);
  if (observed_epochs_.find(key) == observed_epochs_.end() &&
      policy_.epoch_budget > 0 &&
      EpochsObserved(publication) >= policy_.epoch_budget) {
    LogDenial(obs::ReasonCode::kEpochBudgetExceeded, now_ns,
              static_cast<int64_t>(epoch));
    return Status::PermissionDenied(
        "tenant '" + tenant_ + "' epoch budget (" +
        std::to_string(policy_.epoch_budget) + ") exhausted on '" +
        publication + "' at epoch " + std::to_string(epoch));
  }
  auto estimate = pub->estimator()->Estimate(query);
  if (!estimate.ok()) {
    ++stats_.errors;
    return estimate;
  }
  // Charge the budget only for answered queries: a refused or failed
  // request taught the tenant nothing about this epoch's partition.
  observed_epochs_.insert(key);
  ++stats_.answered;
  return estimate;
}

}  // namespace serve
}  // namespace anatomy
