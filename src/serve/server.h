// AnatomyServer: the always-on serve loop over a PublicationCatalog.
//
// Run() plays an open-loop traffic schedule (serve/traffic.h) against
// per-tenant Sessions (serve/session.h) in VIRTUAL time, modelling a small
// coordinator pool: each admitted request waits for a free coordinator
// lane, then costs its estimator's virtual fan-out latency. End-to-end
// latency = queueing delay + fan-out — so overload shows up as queueing
// (the open-loop schedule never thins), and every p50/p99 in the report is
// reproducible from the seed.
//
// Control planes that run DURING traffic, interleaved on the same clock:
//
//   * Epoch swaps (EpochSwapSpec): at `at_ns` a copy-on-write rebuild
//     window of RebuildWindowNs() opens for the named publication. The old
//     epoch keeps answering every query arriving inside the window — the
//     cluster's PREPARE writes next to the live epoch and only the single
//     COMMIT page write (at the window's end) flips the fleet. The report
//     counts queries answered inside each window and asserts none were
//     blocked or served by the wrong epoch. A SwapKillPoint turns the swap
//     into a chaos experiment: the coordinator "crashes" at that phase and
//     Recover() restores a consistent epoch before serving continues.
//
//   * Latency regressions (LatencyRegressionSpec): at start_ns a FaultSpec
//     (typically Pareto stalls) is armed on every node of a publication
//     and healed at end_ns — the lever that makes the latency SLO fire and
//     then resolve, deterministically.
//
//   * SLO ticks: an obs::SloEngine latency objective over the server's
//     request histogram is ticked on a fixed virtual cadence; fire/resolve
//     edges land in the report (and, via the engine, in the flight
//     recorder and metrics every export already has).

#ifndef ANATOMY_SERVE_SERVER_H_
#define ANATOMY_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/catalog.h"
#include "serve/session.h"
#include "serve/traffic.h"
#include "storage/fault_injection.h"

namespace anatomy {
namespace serve {

struct EpochSwapSpec {
  std::string publication;
  /// Virtual time the COW rebuild window opens; the COMMIT flip lands at
  /// at_ns + RebuildWindowNs().
  uint64_t at_ns = 0;
  /// kNone = clean swap; otherwise the coordinator is killed at that phase
  /// and recovery runs before serving continues.
  SwapKillPoint kill = SwapKillPoint::kNone;
};

struct LatencyRegressionSpec {
  std::string publication;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  /// Armed on every node disk of the publication at start_ns, healed (all
  /// rates zero) at end_ns. Defaults to a heavy Pareto stall schedule.
  FaultSpec fault = DefaultRegressionFault();

  static FaultSpec DefaultRegressionFault() {
    FaultSpec spec;
    spec.stall_rate = 0.9;
    spec.stall_scale_us = 2'000.0;
    spec.stall_alpha = 1.2;
    return spec;
  }
};

struct ServeLoopOptions {
  TrafficOptions traffic;
  /// Virtual length of the run; arrivals past this are not admitted.
  uint64_t duration_ns = 1'000'000'000;
  /// Concurrent coordinator lanes requests queue for.
  size_t coordinator_workers = 4;
  std::vector<EpochSwapSpec> swaps;
  std::vector<LatencyRegressionSpec> regressions;
  /// Latency SLO over serve.request_ns: at most (1 - target) of requests
  /// may exceed the threshold. Threshold at a bucket bound (2^23 - 1 ns,
  /// ~8.4ms) so the verdict is exact (see obs/slo.h).
  bool slo_enabled = true;
  uint64_t slo_threshold_ns = (1ull << 23) - 1;
  double slo_target = 0.95;
  uint64_t slo_tick_interval_ns = 20'000'000;
};

/// One swap's observed outcome.
struct SwapOutcome {
  std::string publication;
  uint64_t window_start_ns = 0;
  /// Window end = the COMMIT flip's virtual time.
  uint64_t commit_ns = 0;
  uint64_t epoch_before = 0;
  uint64_t epoch_after = 0;
  /// Requests for this publication admitted inside the window — all served
  /// by epoch_before.
  uint64_t queries_during_window = 0;
  /// Requests the swap prevented from being served, or served by an epoch
  /// other than the window's: always 0 under COW; reported so the bench
  /// can assert it rather than trust it.
  uint64_t queries_blocked = 0;
  bool ok = false;
  bool killed = false;
  /// A killed swap was followed by a successful Recover().
  bool recovered = false;
  std::string status;
};

struct TenantReport {
  std::string tenant;
  uint64_t requests = 0;
  uint64_t answered = 0;
  uint64_t denied = 0;
  uint64_t errors = 0;
  uint64_t exact = 0;
  uint64_t partial = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

struct ServeReport {
  uint64_t requests = 0;
  uint64_t answered = 0;
  uint64_t denied = 0;
  /// Answered but partial (some node lost/late; honestly labeled).
  uint64_t degraded = 0;
  /// Clean whole-query failures (kUnavailable from the estimator).
  uint64_t unavailable = 0;
  /// Allowed-by-policy but not in the catalog (operational error).
  uint64_t not_found = 0;
  /// Virtual time the last admitted request completed.
  uint64_t end_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  /// Queueing delay (admission to service start) at p99.
  uint64_t queue_p99_ns = 0;
  std::vector<SwapOutcome> swaps;
  std::vector<TenantReport> tenants;
  /// Latency SLO edges observed during the run.
  bool slo_fired = false;
  bool slo_resolved = false;
  uint64_t slo_transitions = 0;
};

/// Owns the tenant sessions and the serve loop. Single-threaded: the loop
/// is a deterministic virtual-time simulation (see dist/node.h).
class AnatomyServer {
 public:
  /// `catalog` must outlive the server. `registry` receives the serve.*
  /// metrics (nullptr = global registry); pass a private registry when
  /// multiple servers run in one process.
  explicit AnatomyServer(
      PublicationCatalog* catalog, obs::MetricRegistry* registry = nullptr,
      obs::FlightRecorder* recorder = &obs::FlightRecorder::Global());

  /// Registers a tenant; duplicate names are errors.
  Status AddTenant(const std::string& name, TenantPolicy policy);
  Session* FindTenant(const std::string& name);

  /// Plays the schedule to completion and reports. Fails fast on malformed
  /// options (unknown tenants/publications, bad traffic specs).
  StatusOr<ServeReport> Run(const ServeLoopOptions& options);

  obs::MetricRegistry* registry() { return registry_; }

 private:
  PublicationCatalog* catalog_;
  obs::MetricRegistry* registry_;
  obs::FlightRecorder* recorder_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace serve
}  // namespace anatomy

#endif  // ANATOMY_SERVE_SERVER_H_
