#include "serve/server.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

namespace anatomy {
namespace serve {

namespace {

/// Virtual cost of a request the policy refused at the front door (or that
/// named a missing publication): the check runs before any fan-out.
constexpr uint64_t kAdmissionNs = 1'000;

struct SwapState {
  enum class Phase { kPending, kWindowOpen, kDone };
  EpochSwapSpec spec;
  ServePublication* pub = nullptr;
  SwapOutcome outcome;
  Phase phase = Phase::kPending;
};

struct RegressionState {
  LatencyRegressionSpec spec;
  ServePublication* pub = nullptr;
  bool armed = false;
  bool healed = false;
};

void ArmNodes(ServePublication* pub, const FaultSpec& spec) {
  DistCluster* cluster = pub->cluster();
  for (size_t i = 0; i < cluster->num_nodes(); ++i) {
    cluster->node(i)->fault_disk()->ReArm(spec);
  }
}

void ExecuteSwap(SwapState& swap) {
  SwapOutcome& out = swap.outcome;
  auto report = swap.pub->RepublishEpoch(nullptr, swap.spec.kill);
  if (swap.spec.kill != SwapKillPoint::kNone) {
    // A killed swap returns kUnavailable by contract; recovery must land
    // the fleet on exactly one consistent epoch before serving resumes.
    out.killed = true;
    const Status recovered = swap.pub->cluster()->Recover();
    out.recovered = recovered.ok();
    out.ok = out.recovered;
    out.status = recovered.ok() ? "killed+recovered" : recovered.ToString();
  } else if (report.ok()) {
    out.ok = true;
    out.status = "ok";
  } else {
    out.status = report.status().ToString();
  }
  out.epoch_after = swap.pub->epoch();
  swap.phase = SwapState::Phase::kDone;
}

}  // namespace

AnatomyServer::AnatomyServer(PublicationCatalog* catalog,
                             obs::MetricRegistry* registry,
                             obs::FlightRecorder* recorder)
    : catalog_(catalog),
      registry_(registry != nullptr ? registry : &obs::MetricRegistry::Global()),
      recorder_(recorder) {}

Status AnatomyServer::AddTenant(const std::string& name, TenantPolicy policy) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  if (FindTenant(name) != nullptr) {
    return Status::InvalidArgument("duplicate tenant '" + name + "'");
  }
  sessions_.push_back(
      std::make_unique<Session>(name, std::move(policy), catalog_, recorder_));
  return Status::OK();
}

Session* AnatomyServer::FindTenant(const std::string& name) {
  for (const auto& session : sessions_) {
    if (session->tenant() == name) return session.get();
  }
  return nullptr;
}

StatusOr<ServeReport> AnatomyServer::Run(const ServeLoopOptions& options) {
  if (options.coordinator_workers == 0) {
    return Status::InvalidArgument("coordinator_workers must be >= 1");
  }
  if (options.duration_ns == 0) {
    return Status::InvalidArgument("duration_ns must be positive");
  }
  ANATOMY_ASSIGN_OR_RETURN(TrafficGenerator traffic,
                           TrafficGenerator::Create(options.traffic, catalog_));

  // Resolve every traffic class to its session + publication up front, so a
  // misconfigured schedule fails before any request runs.
  const size_t num_classes = options.traffic.classes.size();
  std::vector<Session*> class_session(num_classes, nullptr);
  std::vector<ServePublication*> class_pub(num_classes, nullptr);
  for (size_t i = 0; i < num_classes; ++i) {
    const TenantTrafficClass& spec = options.traffic.classes[i];
    class_session[i] = FindTenant(spec.tenant);
    if (class_session[i] == nullptr) {
      return Status::InvalidArgument("traffic class " + std::to_string(i) +
                                     " names unknown tenant '" + spec.tenant +
                                     "'");
    }
    class_pub[i] = catalog_->Find(spec.publication);
  }

  std::vector<SwapState> swaps;
  for (const EpochSwapSpec& spec : options.swaps) {
    SwapState state;
    state.spec = spec;
    state.pub = catalog_->Find(spec.publication);
    if (state.pub == nullptr) {
      return Status::InvalidArgument("swap names unknown publication '" +
                                     spec.publication + "'");
    }
    state.outcome.publication = spec.publication;
    state.outcome.status = "window not reached before end of run";
    swaps.push_back(std::move(state));
  }
  std::sort(swaps.begin(), swaps.end(),
            [](const SwapState& a, const SwapState& b) {
              return a.spec.at_ns < b.spec.at_ns;
            });

  std::vector<RegressionState> regressions;
  for (const LatencyRegressionSpec& spec : options.regressions) {
    RegressionState state;
    state.spec = spec;
    state.pub = catalog_->Find(spec.publication);
    if (state.pub == nullptr) {
      return Status::InvalidArgument("regression names unknown publication '" +
                                     spec.publication + "'");
    }
    if (spec.end_ns <= spec.start_ns) {
      return Status::InvalidArgument("regression window must have end > start");
    }
    regressions.push_back(std::move(state));
  }

  obs::Histogram* hist_request = registry_->GetHistogram("serve.request_ns");
  obs::Histogram* hist_queue = registry_->GetHistogram("serve.queue_ns");
  registry_->SetHelp("serve.request_ns",
                     "End-to-end virtual request latency (queue + fan-out)");
  registry_->SetHelp("serve.queue_ns",
                     "Admission-to-service-start queueing delay");
  obs::Counter* ctr_requests = registry_->GetCounter("serve.requests");
  obs::Counter* ctr_answered = registry_->GetCounter("serve.answered");
  obs::Counter* ctr_denied = registry_->GetCounter("serve.denied");
  obs::Counter* ctr_degraded = registry_->GetCounter("serve.degraded");
  obs::Counter* ctr_unavailable = registry_->GetCounter("serve.unavailable");
  std::vector<obs::Histogram*> tenant_hist;
  std::vector<uint64_t> tenant_requests(sessions_.size(), 0);
  std::vector<uint64_t> tenant_exact(sessions_.size(), 0);
  std::vector<uint64_t> tenant_partial(sessions_.size(), 0);
  for (const auto& session : sessions_) {
    tenant_hist.push_back(registry_->GetHistogram("serve.tenant." +
                                                  session->tenant() +
                                                  ".request_ns"));
  }

  obs::SloEngine slo(registry_);
  if (options.slo_enabled) {
    obs::SloObjective objective;
    objective.name = "serve-latency";
    objective.kind = obs::SloObjective::Kind::kLatencyThreshold;
    objective.histogram = "serve.request_ns";
    objective.threshold_ns = options.slo_threshold_ns;
    objective.target = options.slo_target;
    slo.AddObjective(objective);
  }

  ServeReport report;
  bool slo_was_firing = false;
  uint64_t next_tick_ns = options.slo_tick_interval_ns;

  // The coordinator pool: a min-heap of lane free times. An admitted
  // request starts on the earliest-free lane, no earlier than its arrival.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      lanes;
  for (size_t i = 0; i < options.coordinator_workers; ++i) lanes.push(0);

  auto process_control = [&](uint64_t now_ns) {
    for (RegressionState& reg : regressions) {
      if (!reg.armed && reg.spec.start_ns <= now_ns) {
        reg.armed = true;
        ArmNodes(reg.pub, reg.spec.fault);
      }
      if (reg.armed && !reg.healed && reg.spec.end_ns <= now_ns) {
        reg.healed = true;
        // All-zero rates: fault-free schedule from here on.
        ArmNodes(reg.pub, FaultSpec{});
      }
    }
    for (SwapState& swap : swaps) {
      if (swap.phase == SwapState::Phase::kPending &&
          swap.spec.at_ns <= now_ns) {
        swap.phase = SwapState::Phase::kWindowOpen;
        swap.outcome.window_start_ns = swap.spec.at_ns;
        swap.outcome.commit_ns = swap.spec.at_ns + swap.pub->RebuildWindowNs();
        swap.outcome.epoch_before = swap.pub->epoch();
      }
      if (swap.phase == SwapState::Phase::kWindowOpen &&
          swap.outcome.commit_ns <= now_ns) {
        ExecuteSwap(swap);
      }
    }
    while (options.slo_enabled && next_tick_ns <= now_ns) {
      slo.Tick(next_tick_ns);
      const bool firing = slo.status(0).firing;
      if (firing && !slo_was_firing) report.slo_fired = true;
      if (!firing && slo_was_firing) report.slo_resolved = true;
      slo_was_firing = firing;
      next_tick_ns += options.slo_tick_interval_ns;
    }
  };

  while (true) {
    TrafficRequest req = traffic.Next();
    if (req.arrival_ns >= options.duration_ns) break;
    const uint64_t now = req.arrival_ns;
    process_control(now);

    Session* session = class_session[req.class_index];
    const std::string& pub_name =
        options.traffic.classes[req.class_index].publication;
    ServePublication* pub = class_pub[req.class_index];

    // COW window accounting: a request admitted inside an open swap window
    // must be answered by the window's pre-swap epoch — count it, and count
    // any violation as blocked.
    SwapState* open_swap = nullptr;
    for (SwapState& swap : swaps) {
      if (swap.phase == SwapState::Phase::kWindowOpen &&
          swap.spec.publication == pub_name && now >= swap.spec.at_ns) {
        open_swap = &swap;
        ++swap.outcome.queries_during_window;
        break;
      }
    }

    auto estimate = session->Query(pub_name, req.query, now);

    if (open_swap != nullptr &&
        open_swap->pub->epoch() != open_swap->outcome.epoch_before) {
      ++open_swap->outcome.queries_blocked;
    }

    uint64_t service_ns = kAdmissionNs;
    if (estimate.ok()) {
      service_ns = estimate.value().virtual_ns;
    } else if (estimate.status().code() == StatusCode::kUnavailable &&
               pub != nullptr) {
      // An unavailable answer still burned its whole deadline fanning out.
      service_ns = pub->options().query.deadline_ns;
    }

    const uint64_t start_ns = std::max(now, lanes.top());
    lanes.pop();
    const uint64_t finish_ns = start_ns + service_ns;
    lanes.push(finish_ns);
    const uint64_t queue_ns = start_ns - now;
    const uint64_t latency_ns = finish_ns - now;

    ++report.requests;
    ctr_requests->Increment();
    hist_request->Record(latency_ns);
    hist_queue->Record(queue_ns);
    report.end_ns = std::max(report.end_ns, finish_ns);

    size_t tenant_index = 0;
    for (size_t i = 0; i < sessions_.size(); ++i) {
      if (sessions_[i].get() == session) tenant_index = i;
    }
    tenant_hist[tenant_index]->Record(latency_ns);
    ++tenant_requests[tenant_index];

    if (estimate.ok()) {
      ++report.answered;
      ctr_answered->Increment();
      if (estimate.value().exact) {
        ++tenant_exact[tenant_index];
      } else {
        ++report.degraded;
        ctr_degraded->Increment();
        ++tenant_partial[tenant_index];
      }
    } else if (estimate.status().code() == StatusCode::kPermissionDenied) {
      ++report.denied;
      ctr_denied->Increment();
    } else if (estimate.status().code() == StatusCode::kNotFound) {
      ++report.not_found;
    } else {
      ++report.unavailable;
      ctr_unavailable->Increment();
    }
  }

  // Past the last admitted arrival: run every remaining due control event,
  // then complete any swap whose window opened but whose commit lies beyond
  // the final arrival — the rebuild finishes even with no traffic to watch.
  process_control(options.duration_ns);
  for (SwapState& swap : swaps) {
    if (swap.phase == SwapState::Phase::kWindowOpen) ExecuteSwap(swap);
  }
  if (options.slo_enabled) {
    slo.Tick(std::max(next_tick_ns, report.end_ns + 1));
    const bool firing = slo.status(0).firing;
    if (firing && !slo_was_firing) report.slo_fired = true;
    if (!firing && slo_was_firing) report.slo_resolved = true;
    report.slo_transitions = slo.status(0).transitions;
  }

  report.p50_ns = hist_request->Quantile(0.5);
  report.p99_ns = hist_request->Quantile(0.99);
  report.max_ns = hist_request->max();
  report.queue_p99_ns = hist_queue->Quantile(0.99);
  for (SwapState& swap : swaps) report.swaps.push_back(swap.outcome);
  for (size_t i = 0; i < sessions_.size(); ++i) {
    TenantReport tenant;
    tenant.tenant = sessions_[i]->tenant();
    tenant.requests = tenant_requests[i];
    tenant.answered = sessions_[i]->stats().answered;
    tenant.denied = sessions_[i]->stats().denied;
    tenant.errors = sessions_[i]->stats().errors;
    tenant.exact = tenant_exact[i];
    tenant.partial = tenant_partial[i];
    tenant.p50_ns = tenant_hist[i]->Quantile(0.5);
    tenant.p99_ns = tenant_hist[i]->Quantile(0.99);
    report.tenants.push_back(std::move(tenant));
  }
  return report;
}

}  // namespace serve
}  // namespace anatomy
