#include "taxonomy/taxonomy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anatomy {

std::string CodeInterval::ToString() const {
  if (empty()) return "[empty]";
  if (lo == hi) return std::to_string(lo);
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

Taxonomy Taxonomy::Free(Code domain_size) {
  ANATOMY_CHECK(domain_size > 0);
  Taxonomy t;
  t.domain_size_ = domain_size;
  t.free_ = true;
  return t;
}

StatusOr<Taxonomy> Taxonomy::BuildBalanced(Code domain_size, int height) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (height < 1) return Status::InvalidArgument("height must be >= 1");
  // Fanout so that f^height >= domain_size, but at least 2 so every level
  // actually coarsens.
  const double root =
      std::pow(static_cast<double>(domain_size), 1.0 / height);
  int64_t fanout = std::max<int64_t>(2, static_cast<int64_t>(std::ceil(root)));
  while (std::pow(static_cast<double>(fanout), height) <
         static_cast<double>(domain_size)) {
    ++fanout;  // Guards against floating-point underestimation of the root.
  }
  std::vector<std::vector<Code>> level_starts;
  int64_t width = 1;
  for (int level = 1; level <= height; ++level) {
    width *= fanout;
    std::vector<Code> starts;
    for (int64_t s = 0; s < domain_size; s += width) {
      starts.push_back(static_cast<Code>(s));
    }
    level_starts.push_back(std::move(starts));
  }
  // Force the top level to be the single root even if rounding left several
  // intervals (possible when domain_size is not a power of fanout).
  level_starts.back() = {0};
  return FromLevelStarts(domain_size, std::move(level_starts));
}

StatusOr<Taxonomy> Taxonomy::FromLevelStarts(
    Code domain_size, std::vector<std::vector<Code>> level_starts) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (level_starts.empty()) {
    return Status::InvalidArgument("at least one level is required");
  }
  for (size_t j = 0; j < level_starts.size(); ++j) {
    const auto& starts = level_starts[j];
    if (starts.empty() || starts[0] != 0) {
      return Status::InvalidArgument("each level must start at code 0");
    }
    for (size_t i = 1; i < starts.size(); ++i) {
      if (starts[i] <= starts[i - 1] || starts[i] >= domain_size) {
        return Status::InvalidArgument(
            "level starts must be strictly increasing within the domain");
      }
    }
    if (j > 0) {
      // Coarsening: every start of level j must be a start of level j-1.
      const auto& finer = level_starts[j - 1];
      for (Code s : starts) {
        if (!std::binary_search(finer.begin(), finer.end(), s)) {
          return Status::InvalidArgument(
              "level " + std::to_string(j + 1) +
              " does not coarsen the level below it");
        }
      }
    }
  }
  if (level_starts.back().size() != 1) {
    return Status::InvalidArgument("the top level must be a single root");
  }
  Taxonomy t;
  t.domain_size_ = domain_size;
  t.free_ = false;
  t.level_starts_ = std::move(level_starts);
  return t;
}

size_t Taxonomy::NodeIndex(size_t level_idx, Code code) const {
  const auto& starts = level_starts_[level_idx];
  auto it = std::upper_bound(starts.begin(), starts.end(), code);
  ANATOMY_CHECK(it != starts.begin());
  return static_cast<size_t>(std::distance(starts.begin(), it)) - 1;
}

CodeInterval Taxonomy::IntervalAt(int level, Code code) const {
  ANATOMY_CHECK(!free_);
  ANATOMY_CHECK(level >= 1 && level <= height());
  ANATOMY_CHECK(code >= 0 && code < domain_size_);
  const size_t level_idx = static_cast<size_t>(level - 1);
  const auto& starts = level_starts_[level_idx];
  const size_t i = NodeIndex(level_idx, code);
  const Code lo = starts[i];
  const Code hi =
      (i + 1 < starts.size()) ? starts[i + 1] - 1 : domain_size_ - 1;
  return {lo, hi};
}

CodeInterval Taxonomy::Snap(const CodeInterval& extent) const {
  ANATOMY_CHECK(!extent.empty());
  ANATOMY_CHECK(extent.lo >= 0 && extent.hi < domain_size_);
  if (free_) return extent;
  if (extent.lo == extent.hi) return extent;  // A leaf is always a node.
  for (int level = 1; level <= height(); ++level) {
    CodeInterval node = IntervalAt(level, extent.lo);
    if (node.Contains(extent)) return node;
  }
  return {0, domain_size_ - 1};
}

std::vector<Code> Taxonomy::CutsWithin(const CodeInterval& extent) const {
  ANATOMY_CHECK(!extent.empty());
  std::vector<Code> cuts;
  if (extent.lo == extent.hi) return cuts;
  if (free_) {
    cuts.reserve(static_cast<size_t>(extent.length() - 1));
    for (Code c = extent.lo; c < extent.hi; ++c) cuts.push_back(c);
    return cuts;
  }
  const CodeInterval node = Snap(extent);
  // Child boundaries of `node`: if node is at level L, its children are the
  // level L-1 intervals inside it (or individual codes when L == 1).
  int node_level = 1;
  while (node_level <= height() &&
         !(IntervalAt(node_level, node.lo) == node)) {
    ++node_level;
  }
  if (node_level > height()) {
    // extent is a single leaf snapped to itself; no admissible cut.
    return cuts;
  }
  if (node_level == 1) {
    for (Code c = std::max(extent.lo, node.lo); c < std::min(extent.hi, node.hi);
         ++c) {
      cuts.push_back(c);
    }
    return cuts;
  }
  const auto& child_starts = level_starts_[static_cast<size_t>(node_level) - 2];
  auto it = std::upper_bound(child_starts.begin(), child_starts.end(), node.lo);
  for (; it != child_starts.end() && *it <= node.hi; ++it) {
    const Code cut = *it - 1;  // Left half ends just before the child start.
    if (cut >= extent.lo && cut < extent.hi) cuts.push_back(cut);
  }
  return cuts;
}

size_t Taxonomy::NodesAtLevel(int level) const {
  ANATOMY_CHECK(!free_);
  ANATOMY_CHECK(level >= 1 && level <= height());
  return level_starts_[static_cast<size_t>(level) - 1].size();
}

TaxonomySet TaxonomySet::AllFree(const Schema& schema) {
  TaxonomySet set;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    set.Add(Taxonomy::Free(schema.attribute(i).domain_size));
  }
  return set;
}

}  // namespace anatomy
