// Taxonomy trees over discrete attribute domains.
//
// Table 6 of the paper gives each QI attribute a generalization method:
// "free interval" (endpoints may fall anywhere in the domain) or "taxonomy
// tree (x)" (endpoints must lie on the boundaries of a height-x taxonomy's
// nodes). A Taxonomy here is a hierarchy of contiguous code intervals: level 0
// is the individual codes, level height() is the root covering the whole
// domain, and each level coarsens the one below it.
//
// Multidimensional generalization (generalization/mondrian.h) uses two
// operations: Snap(extent) — the smallest node covering a group's actual
// value range, which becomes the published interval — and CutsWithin(extent)
// — the admissible binary split positions, i.e. the child boundaries of the
// snapped node that fall strictly inside the extent.

#ifndef ANATOMY_TAXONOMY_TAXONOMY_H_
#define ANATOMY_TAXONOMY_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/schema.h"

namespace anatomy {

/// Closed interval of attribute codes [lo, hi].
struct CodeInterval {
  Code lo = 0;
  Code hi = -1;

  bool empty() const { return hi < lo; }
  /// Number of codes covered (the paper's L(QI[i]) for discrete domains).
  int64_t length() const { return empty() ? 0 : int64_t{hi} - lo + 1; }
  bool Contains(Code c) const { return c >= lo && c <= hi; }
  bool Contains(const CodeInterval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool Intersects(const CodeInterval& other) const {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }
  bool operator==(const CodeInterval& other) const {
    return lo == other.lo && hi == other.hi;
  }

  std::string ToString() const;
};

class Taxonomy {
 public:
  /// A "free interval" attribute: modeled as a degenerate taxonomy where every
  /// cut position is admissible.
  static Taxonomy Free(Code domain_size);

  /// Builds a balanced taxonomy of the given height: level j consists of
  /// intervals of f^j codes (last one truncated) with f = ceil(m^(1/height)).
  /// height must be >= 1; domain_size >= 1.
  static StatusOr<Taxonomy> BuildBalanced(Code domain_size, int height);

  /// Builds from explicit per-level interval start lists. level_starts[j] must
  /// begin with 0, be strictly increasing, and each level must coarsen the
  /// previous (every start at level j also starts an interval at level j-1).
  /// level_starts[0] (the leaves) is implicit and must not be passed.
  static StatusOr<Taxonomy> FromLevelStarts(
      Code domain_size, std::vector<std::vector<Code>> level_starts);

  Code domain_size() const { return domain_size_; }
  bool is_free() const { return free_; }
  /// Number of levels above the leaves (0 for Free taxonomies).
  int height() const { return static_cast<int>(level_starts_.size()); }

  /// The interval at `level` (1..height) containing `code`.
  CodeInterval IntervalAt(int level, Code code) const;

  /// Smallest taxonomy node covering `extent` (the whole domain at worst).
  /// For Free taxonomies returns `extent` unchanged.
  CodeInterval Snap(const CodeInterval& extent) const;

  /// Admissible cut positions strictly inside `extent`: position c means
  /// left = [extent.lo, c], right = [c+1, extent.hi]. For Free taxonomies
  /// every c in [lo, hi-1]; otherwise the child boundaries of Snap(extent)
  /// lying inside the extent.
  std::vector<Code> CutsWithin(const CodeInterval& extent) const;

  /// Number of nodes at `level` (1..height).
  size_t NodesAtLevel(int level) const;

 private:
  Taxonomy() = default;

  /// Index of the interval containing `code` in level_starts_[level_idx].
  size_t NodeIndex(size_t level_idx, Code code) const;

  Code domain_size_ = 0;
  bool free_ = false;
  /// level_starts_[j] = sorted interval start codes of level j+1 (level 1 is
  /// index 0). Leaves (level 0) are implicit.
  std::vector<std::vector<Code>> level_starts_;
};

/// Per-attribute generalization constraints for a whole relation, mirroring
/// the last column of Table 6.
class TaxonomySet {
 public:
  TaxonomySet() = default;

  void Add(Taxonomy taxonomy) { taxonomies_.push_back(std::move(taxonomy)); }
  size_t size() const { return taxonomies_.size(); }
  const Taxonomy& at(size_t i) const { return taxonomies_[i]; }

  /// Free taxonomies for every attribute of `schema` (no constraints).
  static TaxonomySet AllFree(const Schema& schema);

 private:
  std::vector<Taxonomy> taxonomies_;
};

}  // namespace anatomy

#endif  // ANATOMY_TAXONOMY_TAXONOMY_H_
