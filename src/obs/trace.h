// Lightweight tracing: RAII spans recorded into per-thread ring buffers,
// exportable as Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file).
//
// Cost model: tracing is off by default. A span on the disabled path is one
// relaxed atomic load — no clock read, no buffer touch — so instrumented hot
// paths stay within the bench_obs_overhead budget. When enabled, a span is
// two steady_clock reads plus one append under a per-thread, essentially
// uncontended mutex (only the owning thread writes; an exporter reads
// rarely), which keeps the recorder TSan-clean without a lock-free ring.
//
// Span names/categories must be string literals (or otherwise outlive the
// recorder): events store the pointers, not copies.
//
// Determinism contract: like metrics, traces are strictly out-of-band —
// recording never feeds back into partitioning, RNG streams, or estimates.

#ifndef ANATOMY_OBS_TRACE_H_
#define ANATOMY_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace anatomy {
namespace obs {

/// One completed span ("X" phase in the Chrome trace-event format).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// Events kept per thread before the oldest are overwritten.
inline constexpr size_t kTraceRingCapacity = 16384;

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The recorder every ScopedSpan records into.
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds on the steady clock since this recorder was constructed.
  uint64_t NowNs() const;

  /// Appends one completed span to the calling thread's ring buffer.
  void Record(const char* name, const char* category, uint64_t start_ns,
              uint64_t dur_ns);

  /// Events currently retained across all threads.
  size_t event_count() const;
  /// Events overwritten by ring wraparound so far.
  uint64_t dropped() const;

  /// Drops all retained events and the dropped count; thread buffers stay
  /// registered, so cached pointers in live threads remain valid.
  void Clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}; ts/dur in µs). Safe to
  /// call while spans are still being recorded — concurrent events may or
  /// may not make the cut, complete ones are never torn.
  std::string ExportChromeJson() const;

  /// ExportChromeJson to a file.
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;
    /// Total events ever recorded; slot = head % capacity.
    uint64_t head = 0;
    uint32_t tid = 0;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::thread::id, ThreadBuffer*> by_thread_;
};

/// RAII span. Construction samples the clock when tracing is enabled;
/// destruction (or an early End()) records the completed event. When tracing
/// is disabled the whole object is a single relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "anatomy");
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span now (idempotent); useful for phase boundaries in linear
  /// code where scopes would nest awkwardly.
  void End();

 private:
  const char* name_;
  const char* category_;
  uint64_t start_ns_ = 0;
  bool active_;
};

}  // namespace obs
}  // namespace anatomy

#endif  // ANATOMY_OBS_TRACE_H_
