// Lightweight causal tracing: RAII spans recorded into per-thread ring
// buffers, exportable as Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file).
//
// Cost model: tracing is off by default. A span on the disabled path is one
// relaxed atomic load — no clock read, no buffer touch, no ID allocation —
// so instrumented hot paths stay within the bench_obs_overhead budget. When
// enabled, a span is two steady_clock reads plus one append under a
// per-thread, essentially uncontended mutex (only the owning thread writes;
// an exporter reads rarely), which keeps the recorder TSan-clean without a
// lock-free ring.
//
// Causality: every event carries a trace_id (one request end-to-end), a
// span_id (this event), and a parent_id (0 for roots). Wall-clock ScopedSpans
// nest automatically through a thread_local span stack; cross-thread and
// cross-node propagation goes through an explicit TraceContext. Events may
// carry up to kMaxTraceArgs small typed (key, int64) args.
//
// Timelines: wall-clock events render under process kWallPid with the
// recording thread's tid. The distributed layer runs in VIRTUAL time (its
// clock is simulated service nanoseconds, not this process's clock), so its
// events render under a separate process kVirtualPid whose "threads" are
// lanes — lane 0 is the coordinator, lane i+1 is node i. Merging N nodes
// onto one coherent timeline is then just exporting one recorder.
//
// Span names/categories must be string literals (or otherwise outlive the
// recorder): events store the pointers, not copies.
//
// Determinism contract: like metrics, traces are strictly out-of-band —
// recording never feeds back into partitioning, RNG streams, or estimates.

#ifndef ANATOMY_OBS_TRACE_H_
#define ANATOMY_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace anatomy {
namespace obs {

/// Typed args kept inline in an event (small by design: an event stays POD
/// and ring slots stay fixed-size).
inline constexpr size_t kMaxTraceArgs = 4;

/// Chrome-trace process ids for the two timelines.
inline constexpr uint32_t kWallPid = 1;
inline constexpr uint32_t kVirtualPid = 2;

struct TraceArg {
  const char* key = nullptr;
  int64_t value = 0;
};

/// One completed span ("X" phase in the Chrome trace-event format).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Causal identity; 0 means "not part of a trace" (bare Record() events).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  /// Virtual-timeline lane (tid under kVirtualPid); unused for wall events.
  uint32_t lane = 0;
  /// Wall events use the recording thread's tid under kWallPid; virtual
  /// events use `lane` under kVirtualPid.
  bool virtual_time = false;
  uint8_t num_args = 0;
  TraceArg args[kMaxTraceArgs];

  /// Appends an arg in place; silently drops beyond kMaxTraceArgs.
  void AddArg(const char* key, int64_t value) {
    if (num_args < kMaxTraceArgs) {
      args[num_args++] = TraceArg{key, value};
    }
  }
};

/// Propagates causal identity across threads, nodes, and virtual time.
/// A context with recording == false makes every downstream span a no-op
/// beyond the one relaxed load (ids still flow, so flight-recorder events
/// stay correlated even when tracing is off).
struct TraceContext {
  uint64_t trace_id = 0;
  /// The span downstream events attach to as children.
  uint64_t parent_span = 0;
  /// Virtual-clock origin of the downstream work (virtual timeline only).
  uint64_t virtual_start_ns = 0;
  /// Virtual lane downstream events default to.
  uint32_t lane = 0;
  bool recording = false;
};

/// Events kept per thread before the oldest are overwritten.
inline constexpr size_t kTraceRingCapacity = 16384;

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The recorder every ScopedSpan records into.
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Process-wide unique, monotonically increasing id (never 0). Used for
  /// trace ids and span ids alike; one relaxed fetch_add.
  static uint64_t NewId();

  /// Nanoseconds on the steady clock since this recorder was constructed.
  uint64_t NowNs() const;

  /// Appends one completed span to the calling thread's ring buffer.
  /// Legacy identity-free form; kept because bare phase markers don't need
  /// causality.
  void Record(const char* name, const char* category, uint64_t start_ns,
              uint64_t dur_ns);

  /// Appends a fully specified event (ids, args, virtual lanes).
  void RecordEvent(const TraceEvent& event);

  /// Events currently retained across all threads.
  size_t event_count() const;
  /// Events overwritten by ring wraparound so far.
  uint64_t dropped() const;

  /// Drops all retained events and the dropped count; thread buffers stay
  /// registered, so cached pointers in live threads remain valid and tids
  /// remain stable across Clear/export cycles.
  void Clear();

  /// Retained events merged across threads (ring order per thread). Mainly
  /// for tests that want structured access instead of JSON.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}; ts/dur in µs). Safe to
  /// call while spans are still being recorded — concurrent events may or
  /// may not make the cut, complete ones are never torn. pid/tid assignment
  /// is stable across repeated exports of the same recorder.
  std::string ExportChromeJson() const;

  /// ExportChromeJson to a file.
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;
    /// Total events ever recorded; slot = head % capacity.
    uint64_t head = 0;
    uint32_t tid = 0;
  };

  ThreadBuffer* BufferForThisThread();

  /// Process-unique, never reused: the per-thread buffer cache keys on this
  /// rather than the recorder's address, so a recorder constructed at a
  /// freed recorder's address can never hit the stale cache entry.
  const uint64_t instance_id_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::unordered_map<std::thread::id, ThreadBuffer*> by_thread_;
};

/// RAII span. Construction samples the clock when tracing is enabled;
/// destruction (or an early End()) records the completed event. When tracing
/// is disabled the whole object is a single relaxed load.
///
/// Enabled spans participate in causal nesting: each span pushes itself on a
/// thread_local stack, so a ScopedSpan constructed inside another's scope
/// becomes its child (same trace_id, parent_id = enclosing span_id). A span
/// with no enclosing scope starts a new trace.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "anatomy");
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span now (idempotent); useful for phase boundaries in linear
  /// code where scopes would nest awkwardly.
  void End();

  /// Attaches a typed arg (no-op when the span is inactive).
  void AddArg(const char* key, int64_t value);

  /// Ids of the live span (0 when inactive); lets callers build a
  /// TraceContext for work they hand off.
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  const char* name_;
  const char* category_;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint8_t num_args_ = 0;
  TraceArg args_[kMaxTraceArgs];
  bool active_;
};

}  // namespace obs
}  // namespace anatomy

#endif  // ANATOMY_OBS_TRACE_H_
