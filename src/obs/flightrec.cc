#include "obs/flightrec.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace anatomy {
namespace obs {

namespace {

/// Keyed by the recorder's instance id, not its address: a new recorder can
/// be constructed where a destroyed one lived, and an address key would then
/// hand back that dead recorder's freed ring.
struct ThreadCache {
  uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local ThreadCache tl_cache;

uint64_t NextRecorderInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* ReasonCodeName(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kNone: return "none";
    case ReasonCode::kOk: return "ok";
    case ReasonCode::kNoShard: return "no-shard";
    case ReasonCode::kDeadlineExhausted: return "deadline-exhausted";
    case ReasonCode::kLateResponse: return "late-response";
    case ReasonCode::kRetriesExhausted: return "retries-exhausted";
    case ReasonCode::kTransientError: return "transient-error";
    case ReasonCode::kInactiveNode: return "inactive-node";
    case ReasonCode::kPermanentError: return "permanent-error";
    case ReasonCode::kAllNodesLost: return "all-nodes-lost";
    case ReasonCode::kNoPublication: return "no-publication";
    case ReasonCode::kPrepareFailed: return "prepare-failed";
    case ReasonCode::kCommitFailed: return "commit-failed";
    case ReasonCode::kActivationFailed: return "activation-failed";
    case ReasonCode::kCoordinatorKilled: return "coordinator-killed";
    case ReasonCode::kFaultInjected: return "fault-injected";
    case ReasonCode::kSloBurn: return "slo-burn";
    case ReasonCode::kAccessDeniedPublication:
      return "access-denied-publication";
    case ReasonCode::kAccessDeniedColumn: return "access-denied-column";
    case ReasonCode::kAccessDeniedAggregate: return "access-denied-aggregate";
    case ReasonCode::kEpochBudgetExceeded: return "epoch-budget-exceeded";
  }
  return "unknown";
}

ReasonClass ClassOf(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kNone:
    case ReasonCode::kOk:
    case ReasonCode::kNoShard:
      return ReasonClass::kOkClass;
    case ReasonCode::kDeadlineExhausted:
    case ReasonCode::kLateResponse:
    case ReasonCode::kRetriesExhausted:
    case ReasonCode::kTransientError:
      return ReasonClass::kTimeoutClass;
    default:
      return ReasonClass::kUnavailableClass;
  }
}

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kEpochPrepare: return "epoch-prepare";
    case FlightEventType::kEpochCommit: return "epoch-commit";
    case FlightEventType::kEpochActivate: return "epoch-activate";
    case FlightEventType::kEpochGc: return "epoch-gc";
    case FlightEventType::kRecovery: return "recovery";
    case FlightEventType::kQueryDegraded: return "query-degraded";
    case FlightEventType::kQueryUnavailable: return "query-unavailable";
    case FlightEventType::kRetry: return "retry";
    case FlightEventType::kHedge: return "hedge";
    case FlightEventType::kFaultInjected: return "fault-injected";
    case FlightEventType::kSloTransition: return "slo-transition";
    case FlightEventType::kAccessDenied: return "access-denied";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() : instance_id_(NextRecorderInstanceId()) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::ThreadRing* FlightRecorder::RingForThisThread() {
  if (tl_cache.recorder_id == instance_id_) {
    return static_cast<ThreadRing*>(tl_cache.ring);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  ThreadRing*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    auto ring = std::make_unique<ThreadRing>();
    ring->ring.resize(kFlightRingCapacity);
    slot = ring.get();
    rings_.push_back(std::move(ring));
  }
  tl_cache.recorder_id = instance_id_;
  tl_cache.ring = slot;
  return slot;
}

void FlightRecorder::Log(FlightRecord record) {
  if (!enabled()) return;
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadRing* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mu);
  ring->ring[ring->head % kFlightRingCapacity] = record;
  ++ring->head;
}

size_t FlightRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += static_cast<size_t>(
        std::min<uint64_t>(ring->head, kFlightRingCapacity));
  }
  return total;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->head > kFlightRingCapacity) {
      total += ring->head - kFlightRingCapacity;
    }
  }
  return total;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->head = 0;
  }
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<FlightRecord> out;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    const uint64_t retained =
        std::min<uint64_t>(ring->head, kFlightRingCapacity);
    for (uint64_t k = ring->head - retained; k < ring->head; ++k) {
      out.push_back(ring->ring[k % kFlightRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::ExportJson() const {
  const std::vector<FlightRecord> records = Snapshot();
  std::ostringstream os;
  os << "{\"dropped\":" << dropped() << ",\"events\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const FlightRecord& r = records[i];
    if (i != 0) os << ",";
    os << "{\"seq\":" << r.seq << ",\"t_ns\":" << r.t_ns << ",\"type\":\""
       << FlightEventTypeName(r.type) << "\",\"reason\":\""
       << ReasonCodeName(r.reason) << "\",\"node\":" << r.node
       << ",\"epoch\":" << r.epoch << ",\"trace_id\":" << r.trace_id
       << ",\"detail\":" << r.detail << "}";
  }
  os << "]}";
  return os.str();
}

Status FlightRecorder::WriteJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  os << ExportJson();
  if (!os.good()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

void FlightRecorder::SetDumpPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(dump_mu_);
  dump_path_ = path;
}

void FlightRecorder::MaybeDumpOnError(const char* why) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    path = dump_path_;
  }
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) return;  // never turn one error into two
  os << "{\"why\":\"" << (why != nullptr ? why : "") << "\",\"flightrec\":"
     << ExportJson() << "}";
}

}  // namespace obs
}  // namespace anatomy
