// Flight recorder: a fixed-size, per-thread ring of structured events that
// explains *why* the serving and publish paths did what they did — epoch
// phase transitions, degradation-ladder decisions, retry/hedge outcomes,
// injected faults, SLO alert transitions. Where metrics answer "how many"
// and traces answer "when", the flight recorder answers "why", cheaply
// enough to leave on in production: one ring append per decision, no
// allocation, no strings on the hot path.
//
// Reason codes are the single shared vocabulary for degradation: the
// scatter-gather estimator labels each node's outcome with a ReasonCode, the
// chaos harness asserts on those values (not substrings), and the recorder
// logs the same code — so every degraded or unavailable response in the
// chaos sweep is explainable by value-matching a recorder event.
//
// On any non-OK publish/query path, callers invoke MaybeDumpOnError() which
// writes the merged ring to the configured dump path (off by default).
//
// Determinism contract: recording is strictly out-of-band — it never feeds
// back into partitioning, RNG streams, or estimates.

#ifndef ANATOMY_OBS_FLIGHTREC_H_
#define ANATOMY_OBS_FLIGHTREC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace anatomy {
namespace obs {

/// Why a node attempt, a query, or a publish phase ended the way it did.
/// Shared by the scatter-gather degradation ladder, the chaos assertions,
/// and the flight recorder — one enum, matched by value everywhere.
enum class ReasonCode : uint8_t {
  kNone = 0,
  /// Attempt succeeded.
  kOk,
  /// Node holds no shard of the current epoch (not a failure).
  kNoShard,
  /// The per-query budget was already spent before an attempt could start.
  kDeadlineExhausted,
  /// The node answered, but after its propagated deadline.
  kLateResponse,
  /// Transient failures outlasted the retry schedule.
  kRetriesExhausted,
  /// A single attempt failed with a retryable (transient) error.
  kTransientError,
  /// Node has no active publication (deactivated after a failed recovery).
  kInactiveNode,
  /// Permanent storage error (lost/corrupt publication).
  kPermanentError,
  /// Whole-query outcome: no node produced a usable answer.
  kAllNodesLost,
  /// Whole-query outcome: the current epoch has no publication at all.
  kNoPublication,
  /// Publish pipeline: PREPARE failed on some shard.
  kPrepareFailed,
  /// Publish pipeline: the epoch record COMMIT failed (prepared publications
  /// were rolled back).
  kCommitFailed,
  /// Publish pipeline: a node failed to ACTIVATE the committed epoch.
  kActivationFailed,
  /// Publish pipeline: the coordinator was killed at a SwapKillPoint.
  kCoordinatorKilled,
  /// Injected fault fired (kFaultInjected events; detail = fault kind).
  kFaultInjected,
  /// An SLO burn-rate alert fired.
  kSloBurn,
  /// Session access control (src/serve/session.h): the tenant's policy
  /// does not grant the requested publication at all.
  kAccessDeniedPublication,
  /// The tenant may query the publication but not this QI column (as a
  /// predicate or a SUM measure).
  kAccessDeniedColumn,
  /// The tenant may not run this aggregate kind (e.g. SUM disallowed).
  kAccessDeniedAggregate,
  /// The session's epoch-observation budget is spent: answering from yet
  /// another republication epoch would let an algorithm-aware adversary
  /// correlate more publications than the policy permits (Transparent
  /// Anonymization's multi-publication attack surface).
  kEpochBudgetExceeded,
};

/// Stable lowercase token for a reason code (never nullptr).
const char* ReasonCodeName(ReasonCode reason);

/// Coarse classification the estimator's merge logic switches on.
enum class ReasonClass : uint8_t {
  /// Usable answer (kOk) or nothing expected (kNone, kNoShard).
  kOkClass,
  /// Deadline-shaped failures a longer budget might have cured.
  kTimeoutClass,
  /// Permanent failures retries cannot cure.
  kUnavailableClass,
};
ReasonClass ClassOf(ReasonCode reason);

enum class FlightEventType : uint8_t {
  kEpochPrepare = 0,
  kEpochCommit,
  kEpochActivate,
  kEpochGc,
  kRecovery,
  /// A node attempt failed inside an otherwise-answerable query.
  kQueryDegraded,
  /// A whole query returned a clean error instead of an answer.
  kQueryUnavailable,
  kRetry,
  kHedge,
  kFaultInjected,
  kSloTransition,
  /// A session request was refused by access policy (reason carries which
  /// kAccessDenied*/kEpochBudgetExceeded rule fired).
  kAccessDenied,
};
const char* FlightEventTypeName(FlightEventType type);

/// One structured decision record. POD: ring slots are fixed-size, appends
/// copy 48 bytes and touch nothing else.
struct FlightRecord {
  /// Global order stamp (assigned by Log); snapshots sort on it.
  uint64_t seq = 0;
  /// Event time — virtual ns on the serving path, wall ns elsewhere.
  uint64_t t_ns = 0;
  /// Correlates with the query's TraceEvent.trace_id (0 when not in a query).
  uint64_t trace_id = 0;
  /// Free per-type payload (attempt number, epoch phase detail, burn rate
  /// in thousandths, stall ns, ...).
  int64_t detail = 0;
  /// Epoch the event concerns (0 when not epoch-scoped).
  uint64_t epoch = 0;
  /// Node index, or -1 for coordinator/global events.
  int32_t node = -1;
  FlightEventType type = FlightEventType::kEpochPrepare;
  ReasonCode reason = ReasonCode::kNone;
};

/// Records kept per thread before the oldest are overwritten.
inline constexpr size_t kFlightRingCapacity = 8192;

class FlightRecorder {
 public:
  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every instrumentation site logs into.
  static FlightRecorder& Global();

  /// Recording defaults to ON — the whole point of a flight recorder is
  /// being there when something goes wrong. The switch exists for overhead
  /// experiments; a disabled Log is one relaxed load.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one record (seq is stamped here; the caller's value is
  /// ignored) to the calling thread's ring.
  void Log(FlightRecord record);

  /// Records currently retained across all threads.
  size_t event_count() const;
  /// Records overwritten by ring wraparound so far.
  uint64_t dropped() const;

  /// Drops all retained records; thread rings stay registered.
  void Clear();

  /// Retained records merged across threads, sorted by seq.
  std::vector<FlightRecord> Snapshot() const;

  /// JSON array-of-objects dump of Snapshot().
  std::string ExportJson() const;
  Status WriteJson(const std::string& path) const;

  /// Where MaybeDumpOnError writes; empty (the default) disables dumping.
  void SetDumpPath(const std::string& path);

  /// Called on non-OK publish/query paths: writes the merged ring to the
  /// dump path, if one is configured. `why` is recorded in the dump header.
  /// Never fails the caller — a recorder must not turn an error into two.
  void MaybeDumpOnError(const char* why);

 private:
  struct ThreadRing {
    mutable std::mutex mu;
    std::vector<FlightRecord> ring;
    uint64_t head = 0;
  };

  ThreadRing* RingForThisThread();

  /// Process-unique, never reused: the per-thread ring cache keys on this
  /// rather than the recorder's address, so a recorder constructed at a
  /// freed recorder's address can never hit the stale cache entry.
  const uint64_t instance_id_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_seq_{1};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::unordered_map<std::thread::id, ThreadRing*> by_thread_;
  mutable std::mutex dump_mu_;
  std::string dump_path_;
};

}  // namespace obs
}  // namespace anatomy

#endif  // ANATOMY_OBS_FLIGHTREC_H_
