#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace anatomy {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// 63 - clz, for v != 0 (portable bit_width - 1).
size_t Log2Floor(uint64_t v) {
  size_t log = 0;
  while (v >>= 1) ++log;
  return log;
}

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. The
/// `anatomy_` prefix guarantees a valid first character; every byte the
/// charset does not admit (dots, dashes, quotes, anything) maps to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "anatomy_";
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  return out;
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string PrometheusHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------- Histogram --

size_t Histogram::BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  return Log2Floor(v) + 1;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

namespace {

/// Round-robin shard assignment: the first kNumShards recording threads
/// each get a private shard of every histogram; later threads wrap. The
/// index is process-global so one thread uses the same shard slot in all
/// histograms (one thread_local read on the hot path).
size_t ThisThreadShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

void Histogram::Record(uint64_t v) {
  Shard& s = shards_[ThisThreadShardIndex() % kNumShards];
  s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  // Relaxed CAS min/max: exact under quiescence, monotone under contention.
  uint64_t seen = s.min.load(std::memory_order_relaxed);
  while (v < seen &&
         !s.min.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !s.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const Shard& s : shards_) n += s.count.load(std::memory_order_relaxed);
  return n;
}

uint64_t Histogram::sum() const {
  uint64_t n = 0;
  for (const Shard& s : shards_) n += s.sum.load(std::memory_order_relaxed);
  return n;
}

uint64_t Histogram::min() const {
  uint64_t m = UINT64_MAX;
  for (const Shard& s : shards_) {
    m = std::min(m, s.min.load(std::memory_order_relaxed));
  }
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::max() const {
  uint64_t m = 0;
  for (const Shard& s : shards_) {
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  }
  return m;
}

uint64_t Histogram::bucket_count(size_t i) const {
  uint64_t n = 0;
  for (const Shard& s : shards_) {
    n += s.buckets[i].load(std::memory_order_relaxed);
  }
  return n;
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t merged[kNumBuckets];
  uint64_t n = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    merged[i] = bucket_count(i);
    n += merged[i];
  }
  if (n == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(n) + 0.5));
  rank = std::min(rank, n);
  const uint64_t seen_min = min();
  const uint64_t seen_max = max();
  uint64_t before = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t b = merged[i];
    if (b == 0) continue;
    if (before + b >= rank) {
      // Interpolate the rank's position across the bucket's value span,
      // tightened to the observed extremes (every sample is in
      // [seen_min, seen_max], so the clamp is always sound and makes the
      // top quantile land on max instead of the power-of-two bound).
      uint64_t lo = i == 0 ? 0 : BucketUpperBound(i - 1) + 1;
      uint64_t hi = BucketUpperBound(i);
      lo = std::max(lo, seen_min);
      hi = std::min(hi, seen_max);
      if (hi <= lo) return lo;
      const double frac =
          (static_cast<double>(rank - before) - 0.5) / static_cast<double>(b);
      return lo + static_cast<uint64_t>(
                      static_cast<double>(hi - lo) * frac + 0.5);
    }
    before += b;
  }
  return seen_max;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------- MetricRegistry --

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricRegistry::SetHelp(const std::string& name,
                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = help;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto help_for = [this](const std::string& name) {
    const auto it = help_.find(name);
    return it == help_.end() ? std::string() : it->second;
  };
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, help_for(name), counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, help_for(name), gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.help = help_for(name);
    entry.count = histogram->count();
    entry.sum = histogram->sum();
    entry.min = histogram->min();
    entry.max = histogram->max();
    entry.mean = histogram->Mean();
    entry.p50 = histogram->Quantile(0.5);
    entry.p99 = histogram->Quantile(0.99);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t c = histogram->bucket_count(i);
      if (c > 0) entry.buckets.emplace_back(Histogram::BucketUpperBound(i), c);
    }
    snapshot.histograms.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// ------------------------------------------------------------- Exporters --

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  size_t width = 8;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& g : gauges) width = std::max(width, g.name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());
  auto pad = [&](const std::string& name) {
    return name + std::string(width + 2 - name.size(), ' ');
  };
  for (const auto& c : counters) {
    os << pad(c.name) << c.value << "\n";
  }
  for (const auto& g : gauges) {
    os << pad(g.name) << g.value << "\n";
  }
  for (const auto& h : histograms) {
    os << pad(h.name) << "count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " mean=" << h.mean << " p50~=" << h.p50
       << " p99~=" << h.p99 << " max=" << h.max << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream os;
  // HELP precedes TYPE precedes samples, per metric. Unregistered help
  // falls back to the original dotted name, which at least round-trips the
  // pre-sanitization identity through scrapes.
  const auto help_line = [&os](const std::string& name,
                               const std::string& help,
                               const std::string& original) {
    os << "# HELP " << name << " "
       << PrometheusHelpEscape(help.empty() ? original : help) << "\n";
  };
  for (const auto& c : counters) {
    const std::string name = PrometheusName(c.name);
    help_line(name, c.help, c.name);
    os << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    const std::string name = PrometheusName(g.name);
    help_line(name, g.help, g.name);
    os << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    const std::string name = PrometheusName(h.name);
    help_line(name, h.help, h.name);
    os << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      os << name << "_bucket{le=\"" << upper << "\"} " << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << name << "_sum " << h.sum << "\n"
       << name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i) os << ",";
    os << "\"" << JsonEscape(counters[i].name) << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i) os << ",";
    os << "\"" << JsonEscape(gauges[i].name) << "\":" << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i) os << ",";
    os << "\"" << JsonEscape(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"mean\":" << h.mean << ",\"p50\":" << h.p50 << ",\"p99\":" << h.p99
       << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) os << ",";
      os << "[" << h.buckets[b].first << "," << h.buckets[b].second << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace obs
}  // namespace anatomy
