// Observability metrics: process-wide (or explicitly injected) registry of
// Counter / Gauge / Histogram primitives.
//
// Design constraints, in order:
//   1. Out-of-band: metrics are read-only observers. Nothing in the registry
//      ever feeds back into partitioning, RNG streams, or query answers —
//      enabling or disabling metrics leaves every published table and every
//      estimate bit-identical (asserted by parallel_query_test).
//   2. Thread-safe and TSan-clean: all mutation is relaxed atomics, so any
//      number of worker shards can record into one histogram concurrently
//      with no lost increments (asserted by obs_test's ThreadPool hammer).
//      Per-shard recordings merge deterministically because counter addition
//      is exact and commutative.
//   3. Near-zero cost: an enabled counter increment is one relaxed
//      fetch_add. Hot paths that need a clock read (per-query latency) gate
//      on MetricsEnabled() so the disabled mode costs one relaxed load.
//
// Naming scheme (see DESIGN.md §7): lowercase dotted paths,
// `<subsystem>.<object>.<what>`, with `_ns` suffixing duration histograms —
// e.g. `storage.pool.hits`, `query.latency_ns`, `anatomize.phase.bucketize_ns`.

#ifndef ANATOMY_OBS_METRICS_H_
#define ANATOMY_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace anatomy {
namespace obs {

/// Process-wide kill switch for metric *recording at instrumented call
/// sites that pay a measurable cost* (clock reads, per-query work). Cheap
/// counter increments are always live. Default: enabled.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (pool occupancy, buffered tuples, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed (power-of-two) histogram over uint64 samples. Bucket i == 0
/// holds exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]. That
/// gives ~2x resolution over the full 64-bit range in 65 fixed buckets —
/// coarse, but allocation-free and mergeable by pure addition.
///
/// Internally sharded for write scalability: each recording thread lands on
/// one of kNumShards cache-line-padded shards (a round-robin thread_local
/// index), so concurrent Record() calls from different threads don't
/// ping-pong the same counter lines. Readers merge the shards — addition is
/// exact and commutative, so every accessor returns the same totals as the
/// unsharded histogram did, and the merged distribution is independent of
/// which thread recorded what.
///
/// Quantile() linearly interpolates within the winning bucket (clamped to
/// the observed min/max), so reported p50/p99 are estimates of the actual
/// quantile value instead of power-of-two bucket upper bounds.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  /// Bucket index a value lands in (0 for 0, else 64 - countl_zero(v)).
  static size_t BucketIndex(uint64_t v);

  /// Largest value bucket i admits (inclusive). Bucket 64 saturates at
  /// UINT64_MAX.
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t v);

  uint64_t count() const;
  uint64_t sum() const;
  /// 0 when the histogram is empty.
  uint64_t min() const;
  uint64_t max() const;
  uint64_t bucket_count(size_t i) const;
  double Mean() const;

  /// Sub-bucket linear interpolation at the q-quantile (q clamped to
  /// [0, 1]): the rank's position inside its bucket maps linearly onto the
  /// bucket's value span, tightened to the observed [min, max]. Midpoint
  /// convention — rank r of b in-bucket samples sits at fraction
  /// (r - 1/2) / b — so a single-sample bucket reports its center and the
  /// estimate is monotone in q. Returns 0 when empty.
  uint64_t Quantile(double q) const;

  void Reset();

 private:
  /// 16 shards cover the pool sizes the runners use; threads beyond that
  /// share shards (still exact, just contended again).
  static constexpr size_t kNumShards = 16;

  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    /// UINT64_MAX sentinel while empty.
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };

  Shard shards_[kNumShards];
};

/// One consistent-enough read of a registry (each metric is read atomically;
/// cross-metric skew is possible while writers are live). Sorted by name.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::string help;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::string help;
    int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::string help;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    /// (inclusive upper bound, count) for every non-empty bucket, ascending.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// Human-readable aligned table (the --metrics_out default).
  std::string ToText() const;
  /// Prometheus text exposition (names have dots mapped to underscores and
  /// an `anatomy_` prefix; histograms emit cumulative `_bucket{le=...}`).
  std::string ToPrometheus() const;
  std::string ToJson() const;
};

/// Named metric registry. `Global()` is the process-wide instance every
/// built-in instrumentation site records into; tests and embedders that want
/// isolation construct their own and inject it (e.g. BufferPool's registry
/// parameter). Getters are get-or-create and return pointers that remain
/// valid for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Attaches HELP text (shared across the metric kinds for `name`) emitted
  /// by ToPrometheus(). Idempotent; last writer wins.
  void SetHelp(const std::string& name, const std::string& help);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (the metrics stay registered).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace obs
}  // namespace anatomy

#endif  // ANATOMY_OBS_METRICS_H_
