// SLO engine: objectives over the metrics registry, evaluated as
// multi-window burn rates in *virtual* time.
//
// An objective is either
//   - a latency threshold over a log-bucketed histogram ("p99 dist.query_ns
//     stays under the deadline": at most (1 - target) of samples may exceed
//     threshold_ns), or
//   - a good/total counter ratio ("exact-answer ratio >= target").
//
// Evaluation is driven by Tick(virtual_now_ns) calls from the runners. Each
// tick snapshots the cumulative bucket counts / counter values into a ring;
// a window of k ticks is then the *delta* between the newest snapshot and
// the one k ticks back — no per-sample storage, no second recording path.
// The burn rate of a window is
//     (bad fraction in the window) / (1 - target)     [the error budget]
// so burn 1.0 consumes the budget exactly at the allowed rate. An alert
// FIRES when both the fast and the slow window burn at >= fire_burn_rate
// (the classic two-window rule: the fast window proves it's happening now,
// the slow window proves it's not a blip), and RESOLVES when the fast
// window drops below resolve_burn_rate. Transitions are recorded as trace
// events (virtual timeline, category "slo"), flight-recorder events, and
// counters — so an alert is visible in every export a session already has.
//
// Bucket-granularity rule: a histogram sample is "bad" iff its whole bucket
// lies above the threshold (bucket lower bound > threshold_ns). This makes
// the verdict deterministic and reproducible from snapshots alone; choose
// thresholds at bucket boundaries (2^k - 1) when exactness matters.
//
// Determinism contract: the engine only *reads* metrics; ticking it never
// feeds back into estimates or RNG streams.

#ifndef ANATOMY_OBS_SLO_H_
#define ANATOMY_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace anatomy {
namespace obs {

struct SloObjective {
  enum class Kind : uint8_t { kLatencyThreshold, kGoodRatio };

  std::string name;
  Kind kind = Kind::kLatencyThreshold;

  /// kLatencyThreshold: histogram to watch and the per-sample bound.
  std::string histogram;
  uint64_t threshold_ns = 0;

  /// kGoodRatio: good/total counters (bad = total - good).
  std::string good_counter;
  std::string total_counter;

  /// Target success fraction in (0, 1); error budget = 1 - target.
  double target = 0.99;

  /// Window lengths in ticks and the two-window thresholds.
  size_t fast_window_ticks = 3;
  size_t slow_window_ticks = 12;
  double fire_burn_rate = 2.0;
  double resolve_burn_rate = 1.0;
};

struct SloWindowStats {
  uint64_t total = 0;
  uint64_t bad = 0;
  double burn_rate = 0.0;
  /// Latency objectives: the window's value at the target quantile
  /// (bucket-interpolated); 0 for ratio objectives / empty windows.
  uint64_t quantile_ns = 0;
};

struct SloObjectiveStatus {
  bool firing = false;
  /// Fire + resolve edges since the objective was added.
  uint64_t transitions = 0;
  uint64_t last_transition_ns = 0;
  SloWindowStats fast;
  SloWindowStats slow;
  /// Since the objective was added (not windowed).
  uint64_t lifetime_total = 0;
  uint64_t lifetime_bad = 0;
};

/// Not thread-safe: one engine per driving runner. (The registry reads are
/// atomic; it is the tick ring that is single-writer.)
class SloEngine {
 public:
  /// nullptr watches the global registry.
  explicit SloEngine(MetricRegistry* registry = nullptr);

  /// Registers an objective and baselines it at the current cumulative
  /// state — pre-existing samples never count against the budget. Returns
  /// the objective's index.
  size_t AddObjective(const SloObjective& objective);

  /// Snapshots every objective and re-evaluates the two-window rule.
  /// virtual_now_ns must be monotone across ticks.
  void Tick(uint64_t virtual_now_ns);

  size_t num_objectives() const { return objectives_.size(); }
  const SloObjective& objective(size_t i) const {
    return objectives_[i].spec;
  }
  const SloObjectiveStatus& status(size_t i) const {
    return objectives_[i].status;
  }
  uint64_t ticks() const { return ticks_; }
  bool AnyFiring() const;
  /// Total fire+resolve edges across all objectives.
  uint64_t TotalTransitions() const;

  /// Machine-readable report (the blob bench_dist_serving embeds).
  std::string ReportJson() const;

 private:
  struct Cumulative {
    uint64_t t_ns = 0;
    uint64_t total = 0;
    uint64_t bad = 0;
    /// Latency objectives only: full bucket array for window quantiles.
    std::vector<uint64_t> buckets;
  };

  struct ObjectiveState {
    SloObjective spec;
    SloObjectiveStatus status;
    /// Cumulative state when the objective was added; lifetime stats are
    /// deltas against it.
    Cumulative baseline;
    /// Newest at the back; holds at most slow_window_ticks + 1 entries.
    std::deque<Cumulative> ring;
  };

  Cumulative Read(const SloObjective& spec, uint64_t now_ns) const;
  static SloWindowStats WindowDelta(const ObjectiveState& state,
                                    size_t window_ticks);

  MetricRegistry* registry_;
  std::vector<ObjectiveState> objectives_;
  uint64_t ticks_ = 0;
  uint64_t last_tick_ns_ = 0;
};

}  // namespace obs
}  // namespace anatomy

#endif  // ANATOMY_OBS_SLO_H_
