#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace anatomy {
namespace obs {

namespace {

/// One-entry per-thread cache so the hot Record path skips the registry map.
struct ThreadCache {
  const TraceRecorder* recorder = nullptr;
  void* buffer = nullptr;
};
thread_local ThreadCache tl_cache;

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (tl_cache.recorder == this) {
    return static_cast<ThreadBuffer*>(tl_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  ThreadBuffer*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->ring.resize(kTraceRingCapacity);
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    slot = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  tl_cache.recorder = this;
  tl_cache.buffer = slot;
  return slot;
}

void TraceRecorder::Record(const char* name, const char* category,
                           uint64_t start_ns, uint64_t dur_ns) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->ring[buffer->head % kTraceRingCapacity] =
      TraceEvent{name, category, start_ns, dur_ns};
  ++buffer->head;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += static_cast<size_t>(
        std::min<uint64_t>(buffer->head, kTraceRingCapacity));
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->head > kTraceRingCapacity) {
      total += buffer->head - kTraceRingCapacity;
    }
  }
  return total;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->head = 0;
  }
}

std::string TraceRecorder::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const uint64_t retained =
        std::min<uint64_t>(buffer->head, kTraceRingCapacity);
    for (uint64_t k = buffer->head - retained; k < buffer->head; ++k) {
      const TraceEvent& event = buffer->ring[k % kTraceRingCapacity];
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << event.name << "\",\"cat\":\"" << event.category
         << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << buffer->tid
         << ",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
         << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3 << "}";
    }
  }
  os << "]}";
  return os.str();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  os << ExportChromeJson();
  if (!os.good()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  TraceRecorder& recorder = TraceRecorder::Global();
  active_ = recorder.enabled();
  if (active_) start_ns_ = recorder.NowNs();
}

void ScopedSpan::End() {
  if (!active_) return;
  active_ = false;
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;  // disabled mid-span: drop the event
  recorder.Record(name_, category_, start_ns_, recorder.NowNs() - start_ns_);
}

}  // namespace obs
}  // namespace anatomy
