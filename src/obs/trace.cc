#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace anatomy {
namespace obs {

namespace {

/// One-entry per-thread cache so the hot Record path skips the registry map.
/// Keyed by the recorder's instance id, not its address: a new recorder can
/// be constructed where a destroyed one lived, and an address key would then
/// hand back that dead recorder's freed buffer.
struct ThreadCache {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadCache tl_cache;

uint64_t NextRecorderInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Enclosing enabled spans on this thread; the top is the parent of the next
/// ScopedSpan. Only ScopedSpan touches it, always LIFO, so plain thread_local
/// storage is race-free.
struct SpanFrame {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};
thread_local std::vector<SpanFrame> tl_span_stack;

void AppendEventJson(std::ostringstream& os, const TraceEvent& event,
                     uint32_t wall_tid) {
  const uint32_t pid = event.virtual_time ? kVirtualPid : kWallPid;
  const uint32_t tid = event.virtual_time ? event.lane : wall_tid;
  os << "{\"name\":\"" << event.name << "\",\"cat\":\"" << event.category
     << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
     << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3;
  if (event.span_id != 0) {
    // Perfetto's flow-id plus a full ids block in args: args survive the
    // round trip to the UI and tools/validate_trace.py reads them back.
    os << ",\"id\":" << event.trace_id;
    os << ",\"args\":{\"trace_id\":" << event.trace_id
       << ",\"span_id\":" << event.span_id
       << ",\"parent_id\":" << event.parent_id;
    for (uint8_t a = 0; a < event.num_args; ++a) {
      os << ",\"" << event.args[a].key << "\":" << event.args[a].value;
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

TraceRecorder::TraceRecorder()
    : instance_id_(NextRecorderInstanceId()),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

uint64_t TraceRecorder::NewId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (tl_cache.recorder_id == instance_id_) {
    return static_cast<ThreadBuffer*>(tl_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  ThreadBuffer*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->ring.resize(kTraceRingCapacity);
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    slot = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  tl_cache.recorder_id = instance_id_;
  tl_cache.buffer = slot;
  return slot;
}

void TraceRecorder::Record(const char* name, const char* category,
                           uint64_t start_ns, uint64_t dur_ns) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  RecordEvent(event);
}

void TraceRecorder::RecordEvent(const TraceEvent& event) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->ring[buffer->head % kTraceRingCapacity] = event;
  ++buffer->head;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += static_cast<size_t>(
        std::min<uint64_t>(buffer->head, kTraceRingCapacity));
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->head > kTraceRingCapacity) {
      total += buffer->head - kTraceRingCapacity;
    }
  }
  return total;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->head = 0;
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const uint64_t retained =
        std::min<uint64_t>(buffer->head, kTraceRingCapacity);
    for (uint64_t k = buffer->head - retained; k < buffer->head; ++k) {
      out.push_back(buffer->ring[k % kTraceRingCapacity]);
    }
  }
  return out;
}

std::string TraceRecorder::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::ostringstream os;
  // Default stream precision (6 significant digits) would round large
  // virtual timestamps to ~10us granularity and break parent/child time
  // containment downstream; 15 digits round-trips any ns value < 2^53.
  os.precision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&os, &first](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << json;
  };

  // Metadata first: stable process names, one thread_name per registered
  // buffer (tids are assigned at first record and never reused, so the
  // pid/tid mapping is identical across repeated exports), and one lane
  // name per virtual lane that has events.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":"
       "\"anatomy\"}}");
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":"
       "\"anatomy-virtual\"}}");
  std::set<uint32_t> lanes;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    {
      std::ostringstream meta;
      meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << buffer->tid << ",\"args\":{\"name\":\"thread-" << buffer->tid
           << "\"}}";
      emit(meta.str());
    }
    const uint64_t retained =
        std::min<uint64_t>(buffer->head, kTraceRingCapacity);
    for (uint64_t k = buffer->head - retained; k < buffer->head; ++k) {
      const TraceEvent& event = buffer->ring[k % kTraceRingCapacity];
      if (event.virtual_time) lanes.insert(event.lane);
    }
  }
  for (uint32_t lane : lanes) {
    std::ostringstream meta;
    meta << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" << lane
         << ",\"args\":{\"name\":\""
         << (lane == 0 ? std::string("coordinator")
                       : "node-" + std::to_string(lane - 1))
         << "\"}}";
    emit(meta.str());
  }

  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const uint64_t retained =
        std::min<uint64_t>(buffer->head, kTraceRingCapacity);
    for (uint64_t k = buffer->head - retained; k < buffer->head; ++k) {
      const TraceEvent& event = buffer->ring[k % kTraceRingCapacity];
      if (!first) os << ",";
      first = false;
      AppendEventJson(os, event, buffer->tid);
    }
  }
  os << "]}";
  return os.str();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  os << ExportChromeJson();
  if (!os.good()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  TraceRecorder& recorder = TraceRecorder::Global();
  active_ = recorder.enabled();
  if (!active_) return;
  start_ns_ = recorder.NowNs();
  span_id_ = TraceRecorder::NewId();
  if (tl_span_stack.empty()) {
    trace_id_ = TraceRecorder::NewId();
    parent_id_ = 0;
  } else {
    trace_id_ = tl_span_stack.back().trace_id;
    parent_id_ = tl_span_stack.back().span_id;
  }
  tl_span_stack.push_back(SpanFrame{trace_id_, span_id_});
}

void ScopedSpan::End() {
  if (!active_) return;
  active_ = false;
  // Always unwind the stack we pushed onto, even if tracing was flipped off
  // mid-span (in that case the event itself is dropped).
  if (!tl_span_stack.empty()) tl_span_stack.pop_back();
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;  // disabled mid-span: drop the event
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.dur_ns = recorder.NowNs() - start_ns_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.num_args = num_args_;
  for (uint8_t a = 0; a < num_args_; ++a) event.args[a] = args_[a];
  recorder.RecordEvent(event);
}

void ScopedSpan::AddArg(const char* key, int64_t value) {
  if (!active_ || num_args_ >= kMaxTraceArgs) return;
  args_[num_args_++] = TraceArg{key, value};
}

}  // namespace obs
}  // namespace anatomy
