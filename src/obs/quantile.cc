#include "obs/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace anatomy::obs {

SlidingQuantile::SlidingQuantile(size_t window) {
  ANATOMY_CHECK(window >= 1);
  ring_.resize(window);
}

void SlidingQuantile::Record(uint64_t sample) {
  ring_[next_] = sample;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

uint64_t SlidingQuantile::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  scratch_.assign(ring_.begin(),
                  ring_.begin() + static_cast<ptrdiff_t>(count_));
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(count_ - 1)));
  auto nth = scratch_.begin() + static_cast<ptrdiff_t>(rank);
  std::nth_element(scratch_.begin(), nth, scratch_.end());
  return *nth;
}

}  // namespace anatomy::obs
