// SlidingQuantile: quantiles over the most recent W samples.
//
// The obs Histogram aggregates forever (log-bucketed, process lifetime),
// which is right for reporting but wrong for *control*: a hedging policy
// wants "the p99 of recent node latencies", where an hour-old stall must age
// out instead of inflating the trigger forever. This keeps a fixed ring of
// the last W samples and computes an exact order statistic on demand with
// nth_element — O(W) per query, which is fine at control-plane rates (one
// quantile lookup per scatter-gather query over a ring of a few hundred).
//
// Not thread-safe: each coordinator owns its own instance, matching
// ScatterGatherEstimator's one-caller-at-a-time contract.

#ifndef ANATOMY_OBS_QUANTILE_H_
#define ANATOMY_OBS_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anatomy::obs {

class SlidingQuantile {
 public:
  /// `window` = W, the number of most-recent samples retained (>= 1).
  explicit SlidingQuantile(size_t window);

  void Record(uint64_t sample);

  /// Exact q-quantile (q in [0, 1]) of the retained samples by the
  /// nearest-rank rule; 0 when empty. q = 0.99 over a full window of 200
  /// returns the 198th smallest sample (rank ceil(0.99 * 199)).
  uint64_t Quantile(double q) const;

  size_t count() const { return count_; }
  bool full() const { return count_ >= ring_.size(); }

 private:
  std::vector<uint64_t> ring_;
  size_t next_ = 0;   // ring slot the next sample overwrites
  size_t count_ = 0;  // samples retained, saturates at ring_.size()
  /// Scratch for nth_element so Quantile() does not allocate per call.
  mutable std::vector<uint64_t> scratch_;
};

}  // namespace anatomy::obs

#endif  // ANATOMY_OBS_QUANTILE_H_
