#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/flightrec.h"
#include "obs/trace.h"

namespace anatomy {
namespace obs {

namespace {

/// Inclusive lower bound of histogram bucket i.
uint64_t BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return Histogram::BucketUpperBound(i - 1) + 1;
}

/// Window value at quantile q from bucket-count deltas (midpoint-convention
/// interpolation inside the winning bucket; no min/max clamp — the window
/// has none).
uint64_t WindowQuantile(const std::vector<uint64_t>& deltas, uint64_t total,
                        double q) {
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < deltas.size(); ++i) {
    if (deltas[i] == 0) continue;
    if (cumulative + deltas[i] >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(i));
      const double in_bucket =
          (static_cast<double>(rank - cumulative) - 0.5) /
          static_cast<double>(deltas[i]);
      return static_cast<uint64_t>(lo + in_bucket * (hi - lo));
    }
    cumulative += deltas[i];
  }
  return BucketLowerBound(deltas.size() - 1);
}

}  // namespace

SloEngine::SloEngine(MetricRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricRegistry::Global()) {}

SloEngine::Cumulative SloEngine::Read(const SloObjective& spec,
                                      uint64_t now_ns) const {
  Cumulative c;
  c.t_ns = now_ns;
  if (spec.kind == SloObjective::Kind::kLatencyThreshold) {
    Histogram* hist = registry_->GetHistogram(spec.histogram);
    c.buckets.resize(Histogram::kNumBuckets);
    // Samples are bad iff their whole bucket lies above the threshold
    // (bucket index > the threshold's bucket): deterministic at bucket
    // granularity, never counts a sample <= threshold as bad.
    const size_t first_bad = Histogram::BucketIndex(spec.threshold_ns) + 1;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      c.buckets[i] = hist->bucket_count(i);
      c.total += c.buckets[i];
      if (i >= first_bad) c.bad += c.buckets[i];
    }
  } else {
    const uint64_t good = registry_->GetCounter(spec.good_counter)->value();
    const uint64_t total = registry_->GetCounter(spec.total_counter)->value();
    c.total = total;
    c.bad = total > good ? total - good : 0;
  }
  return c;
}

SloWindowStats SloEngine::WindowDelta(const ObjectiveState& state,
                                      size_t window_ticks) {
  SloWindowStats w;
  if (state.ring.empty()) return w;
  const Cumulative& newest = state.ring.back();
  const size_t base_index =
      state.ring.size() > window_ticks ? state.ring.size() - 1 - window_ticks
                                       : 0;
  const Cumulative& base = state.ring[base_index];
  w.total = newest.total >= base.total ? newest.total - base.total : 0;
  w.bad = newest.bad >= base.bad ? newest.bad - base.bad : 0;
  const double budget = 1.0 - state.spec.target;
  if (w.total > 0 && budget > 0.0) {
    const double bad_fraction =
        static_cast<double>(w.bad) / static_cast<double>(w.total);
    w.burn_rate = bad_fraction / budget;
  }
  if (state.spec.kind == SloObjective::Kind::kLatencyThreshold &&
      w.total > 0 && !newest.buckets.empty() && !base.buckets.empty()) {
    std::vector<uint64_t> deltas(newest.buckets.size(), 0);
    for (size_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = newest.buckets[i] >= base.buckets[i]
                      ? newest.buckets[i] - base.buckets[i]
                      : 0;
    }
    w.quantile_ns = WindowQuantile(deltas, w.total, state.spec.target);
  }
  return w;
}

size_t SloEngine::AddObjective(const SloObjective& objective) {
  ObjectiveState state;
  state.spec = objective;
  // Baseline snapshot: samples recorded before the objective existed never
  // count against its budget (windows and lifetime both delta against it).
  state.baseline = Read(objective, last_tick_ns_);
  state.ring.push_back(state.baseline);
  objectives_.push_back(std::move(state));
  return objectives_.size() - 1;
}

void SloEngine::Tick(uint64_t virtual_now_ns) {
  ++ticks_;
  last_tick_ns_ = virtual_now_ns;
  TraceRecorder& tracer = TraceRecorder::Global();
  int64_t firing_count = 0;
  for (size_t i = 0; i < objectives_.size(); ++i) {
    ObjectiveState& state = objectives_[i];
    state.ring.push_back(Read(state.spec, virtual_now_ns));
    const size_t keep = state.spec.slow_window_ticks + 1;
    while (state.ring.size() > keep) state.ring.pop_front();

    state.status.fast = WindowDelta(state, state.spec.fast_window_ticks);
    state.status.slow = WindowDelta(state, state.spec.slow_window_ticks);
    const Cumulative& newest = state.ring.back();
    state.status.lifetime_total = newest.total >= state.baseline.total
                                      ? newest.total - state.baseline.total
                                      : 0;
    state.status.lifetime_bad =
        newest.bad >= state.baseline.bad ? newest.bad - state.baseline.bad : 0;

    const bool was_firing = state.status.firing;
    bool firing = was_firing;
    if (!was_firing) {
      // Two-window rule: fast proves it's happening now, slow proves it is
      // not a blip. Both must burn at the fire rate over non-empty windows.
      firing = state.status.fast.total > 0 && state.status.slow.total > 0 &&
               state.status.fast.burn_rate >= state.spec.fire_burn_rate &&
               state.status.slow.burn_rate >= state.spec.fire_burn_rate;
    } else {
      firing = state.status.fast.burn_rate >= state.spec.resolve_burn_rate;
    }
    if (firing != was_firing) {
      state.status.firing = firing;
      ++state.status.transitions;
      state.status.last_transition_ns = virtual_now_ns;
      const int64_t burn_x1000 =
          static_cast<int64_t>(state.status.fast.burn_rate * 1000.0);
      if (tracer.enabled()) {
        TraceEvent event;
        event.name = firing ? "slo.fire" : "slo.resolve";
        event.category = "slo";
        event.start_ns = virtual_now_ns;
        event.dur_ns = 0;
        event.trace_id = TraceRecorder::NewId();
        event.span_id = TraceRecorder::NewId();
        event.virtual_time = true;
        event.lane = 0;
        event.AddArg("objective", static_cast<int64_t>(i));
        event.AddArg("burn_x1000", burn_x1000);
        tracer.RecordEvent(event);
      }
      FlightRecord record;
      record.t_ns = virtual_now_ns;
      record.type = FlightEventType::kSloTransition;
      record.reason = firing ? ReasonCode::kSloBurn : ReasonCode::kNone;
      record.detail = burn_x1000;
      FlightRecorder::Global().Log(record);
      registry_->GetCounter(firing ? "slo.fired" : "slo.resolved")
          ->Increment();
    }
    if (state.status.firing) ++firing_count;
  }
  registry_->GetGauge("slo.firing")->Set(firing_count);
}

bool SloEngine::AnyFiring() const {
  for (const ObjectiveState& state : objectives_) {
    if (state.status.firing) return true;
  }
  return false;
}

uint64_t SloEngine::TotalTransitions() const {
  uint64_t total = 0;
  for (const ObjectiveState& state : objectives_) {
    total += state.status.transitions;
  }
  return total;
}

std::string SloEngine::ReportJson() const {
  std::ostringstream os;
  os << "{\"ticks\":" << ticks_ << ",\"virtual_now_ns\":" << last_tick_ns_
     << ",\"objectives\":[";
  for (size_t i = 0; i < objectives_.size(); ++i) {
    const ObjectiveState& state = objectives_[i];
    const SloObjective& spec = state.spec;
    const SloObjectiveStatus& st = state.status;
    if (i != 0) os << ",";
    os << "{\"name\":\"" << spec.name << "\",\"kind\":\""
       << (spec.kind == SloObjective::Kind::kLatencyThreshold ? "latency"
                                                              : "ratio")
       << "\",\"target\":" << spec.target;
    if (spec.kind == SloObjective::Kind::kLatencyThreshold) {
      os << ",\"threshold_ns\":" << spec.threshold_ns;
    }
    const auto window = [&os](const char* key, const SloWindowStats& w) {
      os << ",\"" << key << "\":{\"total\":" << w.total << ",\"bad\":" << w.bad
         << ",\"burn_rate\":" << w.burn_rate
         << ",\"quantile_ns\":" << w.quantile_ns << "}";
    };
    os << ",\"firing\":" << (st.firing ? "true" : "false")
       << ",\"transitions\":" << st.transitions
       << ",\"last_transition_ns\":" << st.last_transition_ns;
    window("fast", st.fast);
    window("slow", st.slow);
    os << ",\"lifetime\":{\"total\":" << st.lifetime_total
       << ",\"bad\":" << st.lifetime_bad << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace anatomy
