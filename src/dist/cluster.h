// DistCluster: the coordinator of the simulated N-node deployment.
//
// Placement: SplitForSharding + ShardedExternalAnatomizer put one shard-
// publication on each node's own disk (crash-consistent per node: root-last
// manifest commit + read-back audit). The coordinator itself owns one extra
// disk holding a single EPOCH RECORD page — the superblock of the fleet.
//
// Two-phase epoch swap (all-nodes-or-none):
//
//   PREPARE   every node publishes its new shard crash-consistently, next
//             to the old epoch's publication (ShardedExternalAnatomizer::
//             RunPublished is itself all-or-none across shards).
//   COMMIT    one retried write of the coordinator's epoch record page,
//             naming the new epoch and every node's new manifest root (plus
//             the previous roots, for audit). This single page write is the
//             atomic flip: before it the fleet serves the old epoch, after
//             it the new one. A crash at ANY point leaves the record naming
//             exactly one consistent epoch.
//   ACTIVATE  nodes load the new publication into their serving state; a
//             node that fails to activate serves nothing (degraded, honest)
//             rather than the wrong epoch.
//   GC        the old epoch's publications are discarded. Idempotent: a
//             crash mid-GC leaves orphan pages that Recover() sweeps.
//
// Recover() rebuilds the whole fleet from disks alone (the epoch record +
// per-node manifest chains), mirroring a full process restart: activate
// what the record names, then free every live page the current epoch does
// not own. SwapKillPoint lets the chaos harness kill the coordinator at
// each phase boundary and assert that recovery always lands on one
// consistent epoch.

#ifndef ANATOMY_DIST_CLUSTER_H_
#define ANATOMY_DIST_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "anatomy/anatomized_tables.h"
#include "anatomy/sharded_anatomizer.h"
#include "common/status.h"
#include "dist/node.h"
#include "storage/fault_injection.h"
#include "storage/recovery.h"
#include "storage/simulated_disk.h"
#include "table/table.h"

namespace anatomy {

/// Coordinator kill points for the chaos harness. The publish call stops
/// dead at the named point (returning kUnavailable), leaving disks exactly
/// as a real crash would; Recover() must then restore consistency.
enum class SwapKillPoint {
  kNone,
  /// New manifests committed on every node; epoch record still old.
  kAfterPrepare,
  /// Record write about to happen but never issued.
  kBeforeCommit,
  /// Record flipped; activation and GC never ran.
  kAfterCommit,
  /// GC of the first node done, the rest never ran.
  kMidGc,
};

struct DistClusterOptions {
  /// Nodes in the fleet (= requested shards; eligibility merging may leave
  /// trailing nodes without a shard, which simply serve nothing). Max 64.
  size_t nodes = 4;
  int l = 4;
  uint64_t seed = 1;
  /// Threads for the prepare phase's per-node publish runs.
  size_t publish_threads = 0;
  DistNodeOptions node;
  /// Retry policy for coordinator epoch-record I/O.
  RetryPolicy commit_retry;
};

/// One node's entry in the epoch record.
struct NodeEpochInfo {
  PageId root = kInvalidPageId;       // kInvalidPageId = no shard this epoch
  PageId prev_root = kInvalidPageId;  // previous epoch's root, for audit
  GroupId group_count = 0;
  uint64_t rows = 0;
};

struct EpochRecord {
  uint64_t epoch = 0;
  uint64_t total_rows = 0;
  std::vector<NodeEpochInfo> nodes;
};

struct EpochPublishReport {
  uint64_t epoch = 0;
  size_t shards_run = 0;
  size_t merged_shards = 0;
  /// Nodes whose post-commit activation failed (they serve nothing until
  /// the next Recover() or epoch; queries degrade honestly meanwhile).
  size_t activation_failures = 0;
};

class DistCluster {
 public:
  /// Builds the fleet and writes the empty epoch-0 record. All disks start
  /// fault-free; chaos arms faults later through the accessors.
  explicit DistCluster(const DistClusterOptions& options);
  DistCluster(const DistCluster&) = delete;
  DistCluster& operator=(const DistCluster&) = delete;

  size_t num_nodes() const { return nodes_.size(); }
  DistNode* node(size_t i) { return nodes_[i].get(); }
  FaultInjectingDisk* coordinator_disk() { return &coord_faults_; }

  uint64_t epoch() const { return record_.epoch; }
  uint64_t total_rows() const { return record_.total_rows; }
  const EpochRecord& record() const { return record_; }
  const std::vector<AttributeDef>& qi_defs() const { return qi_defs_; }
  const AttributeDef& sensitive_def() const { return sensitive_def_; }

  /// The two-phase swap described above. On a prepare failure the fleet is
  /// untouched (still serving the old epoch). `kill` simulates a
  /// coordinator crash at the named point: the call returns kUnavailable
  /// and the fleet is left for Recover().
  StatusOr<EpochPublishReport> PublishEpoch(
      const Microdata& microdata, SwapKillPoint kill = SwapKillPoint::kNone);

  /// Full restart from disks: re-reads the epoch record, re-activates every
  /// node the record names (loading + verifying its manifest), and sweeps
  /// every node's orphan pages (pages no current manifest owns — prepared-
  /// but-uncommitted publications, un-GC'd old epochs, half-done GC). After
  /// a successful Recover every active node serves record().epoch.
  Status Recover();

  /// The single-node view of the current epoch: every node's published
  /// QIT/ST concatenated in node order with group ids globally offset.
  /// Reads through the nodes' (possibly faulted) disks. This is the
  /// reference the scatter-gather result is bit-identical to.
  StatusOr<AnatomizedTables> BuildMergedTables();

 private:
  Status WriteEpochRecord(const EpochRecord& record);
  StatusOr<EpochRecord> ReadEpochRecord();
  /// Frees every live page on node i's disk that the current manifest does
  /// not own. Returns the number of pages swept.
  size_t SweepOrphans(size_t i, const StorageManifest* current);

  DistClusterOptions options_;
  std::vector<std::unique_ptr<DistNode>> nodes_;
  SimulatedDisk coord_base_;
  FaultInjectingDisk coord_faults_;
  PageId record_page_ = kInvalidPageId;
  EpochRecord record_;
  /// The shared data dictionary (captured from the first published
  /// microdata; schemas are public metadata in this deployment model).
  std::vector<AttributeDef> qi_defs_;
  AttributeDef sensitive_def_;
  bool have_schema_ = false;
};

}  // namespace anatomy

#endif  // ANATOMY_DIST_CLUSTER_H_
