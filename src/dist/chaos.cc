#include "dist/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dist/cluster.h"
#include "dist/scatter_gather.h"
#include "obs/flightrec.h"
#include "query/estimator_scratch.h"
#include "query/group_kernels.h"
#include "table/schema.h"
#include "workload/workload.h"

namespace anatomy {
namespace {

enum class FaultMode { kNone, kStalls, kTransient, kCorruptRoot };

const char* FaultModeName(FaultMode m) {
  switch (m) {
    case FaultMode::kNone: return "none";
    case FaultMode::kStalls: return "stalls";
    case FaultMode::kTransient: return "transient";
    case FaultMode::kCorruptRoot: return "corrupt-root";
  }
  return "?";
}

const char* KillName(SwapKillPoint k) {
  switch (k) {
    case SwapKillPoint::kNone: return "none";
    case SwapKillPoint::kAfterPrepare: return "after-prepare";
    case SwapKillPoint::kBeforeCommit: return "before-commit";
    case SwapKillPoint::kAfterCommit: return "after-commit";
    case SwapKillPoint::kMidGc: return "mid-gc";
  }
  return "?";
}

std::string Tag(uint64_t seed, SwapKillPoint kill, FaultMode fault) {
  return "[seed=" + std::to_string(seed) + " kill=" + KillName(kill) +
         " fault=" + FaultModeName(fault) + "]";
}

/// Asserts the fleet is on exactly `expected_epoch`, every shard-bearing
/// node serves it, and no disk holds a page its current manifest does not
/// own.
void CheckConsistency(DistCluster& cluster, uint64_t expected_epoch,
                      const std::string& tag,
                      std::vector<std::string>* violations) {
  if (cluster.epoch() != expected_epoch) {
    violations->push_back(tag + " landed on epoch " +
                          std::to_string(cluster.epoch()) + ", expected " +
                          std::to_string(expected_epoch));
    return;
  }
  for (size_t i = 0; i < cluster.num_nodes(); ++i) {
    const NodeEpochInfo& info = cluster.record().nodes[i];
    DistNode* node = cluster.node(i);
    std::vector<PageId> live = node->disk()->LivePages();
    std::sort(live.begin(), live.end());
    const std::string who = tag + " node " + std::to_string(i);
    if (info.root == kInvalidPageId) {
      if (node->active()) violations->push_back(who + " active with no shard");
      if (!live.empty()) {
        violations->push_back(who + " holds " + std::to_string(live.size()) +
                              " orphan pages (no shard this epoch)");
      }
      continue;
    }
    if (!node->active()) {
      violations->push_back(who + " inactive after recovery");
      continue;
    }
    if (node->epoch() != cluster.epoch()) {
      violations->push_back(who + " serves epoch " +
                            std::to_string(node->epoch()));
    }
    const StorageManifest& m = node->manifest();
    std::vector<PageId> owned = m.manifest_pages;
    owned.insert(owned.end(), m.qit.pages.begin(), m.qit.pages.end());
    owned.insert(owned.end(), m.st.pages.begin(), m.st.pages.end());
    std::sort(owned.begin(), owned.end());
    if (live != owned) {
      violations->push_back(who + " live pages (" +
                            std::to_string(live.size()) +
                            ") differ from the manifest's owned set (" +
                            std::to_string(owned.size()) + ")");
    }
  }
}

/// True iff the recorder holds a query-degraded event matching this exact
/// (trace, node, reason) triple — value equality on the shared ReasonCode,
/// never substring matching.
bool ExplainsDegradedNode(const std::vector<obs::FlightRecord>& events,
                          uint64_t trace_id, int32_t node,
                          obs::ReasonCode reason) {
  for (const auto& e : events) {
    if (e.type == obs::FlightEventType::kQueryDegraded &&
        e.trace_id == trace_id && e.node == node && e.reason == reason) {
      return true;
    }
  }
  return false;
}

/// True iff the recorder holds a query-unavailable event for this trace.
bool ExplainsUnavailable(const std::vector<obs::FlightRecord>& events,
                         uint64_t trace_id) {
  for (const auto& e : events) {
    if (e.type == obs::FlightEventType::kQueryUnavailable &&
        e.trace_id == trace_id) {
      return true;
    }
  }
  return false;
}

}  // namespace

Microdata MakeChaosMicrodata(RowId rows, int l, uint64_t seed) {
  const Code s_domain = static_cast<Code>(3 * l);
  std::vector<AttributeDef> defs;
  defs.push_back(MakeNumerical("Age", 50, /*base=*/17));
  defs.push_back(MakeCategorical("Workclass", 8));
  defs.push_back(MakeNumerical("Hours", 40, /*base=*/1));
  defs.push_back(MakeCategorical("Disease", s_domain));
  Table table(std::make_shared<Schema>(std::move(defs)));
  table.Reserve(rows);
  Rng rng = Rng::ForStream(seed, 0xDA7A);
  std::vector<Code> row(4);
  for (RowId i = 0; i < rows; ++i) {
    row[0] = static_cast<Code>(rng.NextBounded(50));
    row[1] = static_cast<Code>(rng.NextBounded(8));
    row[2] = static_cast<Code>(rng.NextBounded(40));
    // Round-robin sensitive assignment: every value's frequency is within 1
    // of n/(3l), so eligibility for l-diversity always holds — publication
    // can only fail for injected reasons.
    row[3] = static_cast<Code>(i % s_domain);
    table.AppendRow(row);
  }
  Microdata md;
  md.table = std::move(table);
  md.qi_columns = {0, 1, 2};
  md.sensitive_column = 3;
  return md;
}

StatusOr<ChaosReport> RunChaosSweep(const ChaosOptions& options) {
  ChaosReport report;
  constexpr SwapKillPoint kKills[] = {
      SwapKillPoint::kNone, SwapKillPoint::kAfterPrepare,
      SwapKillPoint::kBeforeCommit, SwapKillPoint::kAfterCommit,
      SwapKillPoint::kMidGc};
  constexpr FaultMode kFaults[] = {FaultMode::kNone, FaultMode::kStalls,
                                   FaultMode::kTransient,
                                   FaultMode::kCorruptRoot};

  for (uint64_t seed = 0; seed < options.seeds; ++seed) {
    const Microdata md1 = MakeChaosMicrodata(
        options.rows, options.l, SplitMix64(options.base_seed ^ (seed * 2)));
    const Microdata md2 = MakeChaosMicrodata(
        options.rows, options.l,
        SplitMix64(options.base_seed ^ (seed * 2 + 1)));

    for (SwapKillPoint kill : kKills) {
      for (FaultMode fault : kFaults) {
        ++report.scenarios;
        const std::string tag = Tag(seed, kill, fault);
        // A fresh flight-recorder window per scenario: the ring is bounded,
        // and the explanation assertions below must never fail because an
        // earlier scenario's events wrapped this one's out.
        obs::FlightRecorder::Global().Clear();

        DistClusterOptions copts;
        copts.nodes = options.nodes;
        copts.l = options.l;
        copts.seed = SplitMix64(options.base_seed ^ (seed << 16) ^
                                (static_cast<uint64_t>(kill) << 8) ^
                                static_cast<uint64_t>(fault));
        DistCluster cluster(copts);

        // Epoch 1 is the fault-free baseline; a failure here is a harness
        // bug, not a chaos finding.
        ANATOMY_ASSIGN_OR_RETURN(EpochPublishReport baseline,
                                 cluster.PublishEpoch(md1));
        (void)baseline;

        // Epoch 2: the swap under test, possibly killed mid-flight. A kill
        // is a coordinator crash; Recover() is the restart.
        uint64_t expected_epoch = 1;
        if (kill == SwapKillPoint::kNone) {
          ANATOMY_ASSIGN_OR_RETURN(EpochPublishReport swap,
                                   cluster.PublishEpoch(md2));
          (void)swap;
          expected_epoch = 2;
        } else {
          StatusOr<EpochPublishReport> killed =
              cluster.PublishEpoch(md2, kill);
          if (killed.ok()) {
            report.violations.push_back(tag + " kill point never fired");
          }
          const Status recovered = cluster.Recover();
          if (!recovered.ok()) {
            report.violations.push_back(tag + " recovery failed: " +
                                        recovered.ToString());
            continue;
          }
          ++report.recoveries;
          expected_epoch = (kill == SwapKillPoint::kAfterPrepare ||
                            kill == SwapKillPoint::kBeforeCommit)
                               ? 1
                               : 2;
          if (cluster.epoch() == 1) ++report.rolled_back;
          if (cluster.epoch() == 2) ++report.swapped;
        }
        CheckConsistency(cluster, expected_epoch, tag, &report.violations);

        // The reference view of whatever epoch is live, captured before any
        // fault is armed: the ground truth every response is judged against.
        StatusOr<AnatomizedTables> ref_tables = cluster.BuildMergedTables();
        if (!ref_tables.ok()) {
          report.violations.push_back(tag + " merged reference unavailable: " +
                                      ref_tables.status().ToString());
          continue;
        }
        AnatomyQueryEngine ref_engine(ref_tables.value(), EstimatorOptions{});
        EstimatorScratch scratch;
        const GroupId total_groups =
            static_cast<GroupId>(ref_tables.value().num_groups());

        // Per-node global group ranges and row counts, for honesty checks.
        struct NodeSpan {
          GroupId lo = 0, hi = 0;
          uint64_t rows = 0;
        };
        std::vector<NodeSpan> spans(cluster.num_nodes());
        GroupId offset = 0;
        for (size_t i = 0; i < cluster.num_nodes(); ++i) {
          const NodeEpochInfo& info = cluster.record().nodes[i];
          if (info.root == kInvalidPageId) continue;
          spans[i] = {offset, offset + info.group_count, info.rows};
          offset += info.group_count;
        }

        // Arm the serve-time fault mode.
        switch (fault) {
          case FaultMode::kNone:
            break;
          case FaultMode::kStalls:
            for (size_t i = 0; i < cluster.num_nodes(); ++i) {
              FaultSpec fs;
              fs.seed = SplitMix64(options.base_seed ^ 0x57A11 ^
                                   (seed << 8) ^ i);
              fs.stall_rate = 0.35;
              fs.stall_scale_us = 1500.0;
              fs.stall_alpha = 1.05;
              fs.stall_cap_us = 60'000.0;
              cluster.node(i)->fault_disk()->ReArm(fs);
            }
            break;
          case FaultMode::kTransient:
            for (size_t i = 0; i < cluster.num_nodes(); ++i) {
              FaultSpec fs;
              fs.seed = SplitMix64(options.base_seed ^ 0x7247 ^ (seed << 8) ^ i);
              fs.read_transient_rate = i == 0 ? 1.0 : 0.25;
              cluster.node(i)->fault_disk()->ReArm(fs);
            }
            break;
          case FaultMode::kCorruptRoot:
            for (size_t i = 0; i < cluster.num_nodes(); ++i) {
              const NodeEpochInfo& info = cluster.record().nodes[i];
              if (info.root == kInvalidPageId) continue;
              cluster.node(i)->base_disk()->CorruptStoredPage(info.root, 100,
                                                              0x40);
              break;  // one rotten root is the scenario
            }
            break;
        }

        DistQueryOptions qopts;
        qopts.deadline_ns = options.deadline_ns;
        qopts.seed = SplitMix64(options.base_seed ^ 0x5CA77E7 ^ seed);
        ScatterGatherEstimator estimator(&cluster, qopts);

        MixedWorkloadOptions wopts;
        wopts.base.seed = SplitMix64(options.base_seed ^ 0x11AD ^ seed);
        wopts.base.s = 0.1;
        wopts.base.num_queries = options.queries_per_scenario + 1;
        wopts.sum_fraction = 0.5;
        ANATOMY_ASSIGN_OR_RETURN(
            MixedWorkloadGenerator generator,
            MixedWorkloadGenerator::Create(md1, wopts));

        std::vector<AnatomyQueryEngine::GroupAggregatePartial> ref_partials;
        for (size_t qi = 0; qi < options.queries_per_scenario; ++qi) {
          const AggregateQuery query = generator.Next();
          const bool need_sum = query.kind == AggregateKind::kSum;
          ref_engine.CollectGroupPartials(query.predicates, need_sum,
                                          query.measure_qi, scratch,
                                          &ref_partials);
          const CanonicalFoldResult full = CanonicalFold(ref_partials);
          const double full_value = need_sum ? full.sum : full.count;

          ++report.queries;
          const std::string qtag = tag + " q" + std::to_string(qi);
          StatusOr<PartialEstimate> r = estimator.Estimate(query);
          if (!r.ok()) {
            ++report.unavailable;
            const StatusCode code = r.status().code();
            if (code != StatusCode::kUnavailable &&
                code != StatusCode::kFailedPrecondition) {
              report.violations.push_back(
                  qtag + " unclean error: " + r.status().ToString());
            }
            // A clean error still owes an explanation: the estimator logs a
            // query-unavailable record under the query's trace id even when
            // it has no PartialEstimate to return.
            if (ExplainsUnavailable(obs::FlightRecorder::Global().Snapshot(),
                                    estimator.last_trace_id())) {
              ++report.explained;
            } else {
              report.violations.push_back(
                  qtag + " unavailable response has no flight-recorder "
                         "query-unavailable event");
            }
            continue;
          }
          const PartialEstimate& est = r.value();

          if (est.exact) {
            ++report.exact;
            if (est.value != full_value) {
              report.violations.push_back(
                  qtag + " exact answer differs from the merged fold: got " +
                  std::to_string(est.value) + ", want " +
                  std::to_string(full_value));
            }
            if (est.lower != est.value || est.upper != est.value) {
              report.violations.push_back(qtag +
                                          " exact answer with open bounds");
            }
            continue;
          }

          ++report.partial;
          // Explanation: every degraded node of a partial answer must have a
          // matching flight-recorder event — same trace, same node, same
          // reason code. (Violation text carries the reason name but never
          // the trace id, which is a process-global counter value.)
          {
            const std::vector<obs::FlightRecord> events =
                obs::FlightRecorder::Global().Snapshot();
            bool all_explained = true;
            for (size_t i = 0; i < cluster.num_nodes(); ++i) {
              if (obs::ClassOf(est.reasons[i]) == obs::ReasonClass::kOkClass) {
                continue;
              }
              if (!ExplainsDegradedNode(events, est.trace_id,
                                        static_cast<int32_t>(i),
                                        est.reasons[i])) {
                all_explained = false;
                report.violations.push_back(
                    qtag + " node " + std::to_string(i) + " degraded (" +
                    obs::ReasonCodeName(est.reasons[i]) +
                    ") without a matching flight-recorder event");
              }
            }
            if (all_explained) ++report.explained;
          }
          // Honesty 1: covered rows/mass are the responding nodes' true
          // share, computed from the epoch record.
          uint64_t covered_rows = 0;
          std::vector<bool> group_covered(total_groups, false);
          for (size_t i = 0; i < cluster.num_nodes(); ++i) {
            if (est.reasons[i] != obs::ReasonCode::kOk) continue;
            covered_rows += spans[i].rows;
            for (GroupId g = spans[i].lo; g < spans[i].hi; ++g) {
              group_covered[g] = true;
            }
          }
          if (covered_rows != est.covered_rows) {
            report.violations.push_back(
                qtag + " covered_rows " + std::to_string(est.covered_rows) +
                " != responding nodes' " + std::to_string(covered_rows));
          }
          const double want_mass =
              cluster.total_rows() == 0
                  ? 0.0
                  : static_cast<double>(covered_rows) /
                        static_cast<double>(cluster.total_rows());
          if (est.covered_mass != want_mass) {
            report.violations.push_back(qtag + " covered_mass mislabeled");
          }
          // Honesty 2: the partial value is the EXACT fold over precisely
          // the responding nodes' groups — bit-identical, not approximate.
          std::vector<AnatomyQueryEngine::GroupAggregatePartial> covered;
          for (const auto& p : ref_partials) {
            if (group_covered[p.group]) covered.push_back(p);
          }
          const CanonicalFoldResult pf = CanonicalFold(covered);
          const double partial_value = need_sum ? pf.sum : pf.count;
          if (partial_value != est.value) {
            report.violations.push_back(
                qtag + " partial value is not the fold over responding "
                "nodes: got " + std::to_string(est.value) + ", want " +
                std::to_string(partial_value));
          }
          // Honesty 3: the declared bounds contain the true full answer.
          const double tol = 1e-9 * (1.0 + std::abs(full_value));
          if (full_value < est.lower - tol || full_value > est.upper + tol) {
            report.violations.push_back(
                qtag + " bounds [" + std::to_string(est.lower) + ", " +
                std::to_string(est.upper) + "] exclude the true answer " +
                std::to_string(full_value));
          }
        }

        // Repairable modes must return to exact service after heal+recover.
        // (Corrupt-root keeps its rotten bits by design: healing the device
        // does not resurrect lost data.)
        if (fault == FaultMode::kCorruptRoot) continue;
        for (size_t i = 0; i < cluster.num_nodes(); ++i) {
          cluster.node(i)->fault_disk()->Heal();
        }
        const Status healed = cluster.Recover();
        if (!healed.ok()) {
          report.violations.push_back(tag + " post-heal recovery failed: " +
                                      healed.ToString());
          continue;
        }
        CheckConsistency(cluster, expected_epoch, tag + " post-heal",
                         &report.violations);
        const AggregateQuery query = generator.Next();
        const bool need_sum = query.kind == AggregateKind::kSum;
        ref_engine.CollectGroupPartials(query.predicates, need_sum,
                                        query.measure_qi, scratch,
                                        &ref_partials);
        const CanonicalFoldResult full = CanonicalFold(ref_partials);
        const double full_value = need_sum ? full.sum : full.count;
        StatusOr<PartialEstimate> r = estimator.Estimate(query);
        if (!r.ok() || !r.value().exact || r.value().value != full_value) {
          report.violations.push_back(
              tag + " service did not return to exact after heal+recover");
        }
      }
    }
  }
  return report;
}

}  // namespace anatomy
