// ScatterGatherEstimator: deadline-aware fan-out of COUNT/SUM aggregates
// over a DistCluster, with hedged retries and an explicit degradation
// ladder. All timing is VIRTUAL (see dist/node.h): nodes return the
// duration a request would have taken and the coordinator does the deadline
// arithmetic, so a full chaos sweep runs in milliseconds and is
// bit-reproducible from a seed.
//
// Degradation ladder (DESIGN.md §6), from best to worst:
//
//   exact     every shard-bearing node answered within the deadline
//             (possibly thanks to a hedge). The merged estimate is
//             BIT-IDENTICAL to the canonical fold over the merged
//             single-node tables — distribution is invisible.
//   hedged    same, but at least one answer came from a hedged duplicate
//             request (dist.hedge_wins). Still exact.
//   partial   some node(s) timed out or were unavailable. The answer is the
//             exact fold over the responding nodes only, labeled with the
//             covered row mass and a hard interval bounding what the
//             missing rows could contribute. Never silently wrong.
//   unavailable  no node responded: a clean kUnavailable error, no number.
//
// Hedging: a duplicate request is launched when the primary has been
// outstanding longer than the rolling p99 of observed service times (the
// classic tail-at-scale policy). The earliest successful completion wins.
// Retries: transient failures back off under the shared RetryPolicy
// schedule (storage/recovery.h) with full jitter, capped by the query
// deadline. Permanent failures (lost publication, inactive node) skip the
// ladder entirely — retrying cannot help.

#ifndef ANATOMY_DIST_SCATTER_GATHER_H_
#define ANATOMY_DIST_SCATTER_GATHER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dist/cluster.h"
#include "obs/flightrec.h"
#include "obs/quantile.h"
#include "obs/trace.h"
#include "query/aggregate.h"
#include "query/group_kernels.h"
#include "storage/recovery.h"

namespace anatomy {

struct DistQueryOptions {
  /// End-to-end budget per query, propagated to every node request.
  uint64_t deadline_ns = 5'000'000;
  /// Backoff schedule for per-node transient retries (full jitter is forced
  /// on; the deadline is the overall cap).
  RetryPolicy retry;
  /// Hedged duplicate requests (at most one per node per query).
  bool hedging = true;
  /// Rolling window of observed service times the hedge delay is computed
  /// from, and the quantile used (p99 of recent latencies).
  size_t hedge_quantile_window = 128;
  double hedge_quantile = 0.99;
  /// Floor for the hedge delay, and the pre-warmup fallback is
  /// deadline_ns / 4.
  uint64_t min_hedge_delay_ns = 100'000;
  /// Seed of the coordinator's jitter/backoff streams (per-query stream i
  /// is Rng::ForStream(seed, i), so replay does not depend on history).
  uint64_t seed = 0xD157;
};

/// An honestly-labeled aggregate answer. Per-node outcomes are
/// obs::ReasonCode values — the same enum the flight recorder logs and the
/// chaos harness asserts on, so "why did node 3 degrade" is answered by
/// value equality, never substring matching.
struct PartialEstimate {
  double value = 0.0;
  /// True iff every shard-bearing node responded: `value` is bit-identical
  /// to the single-node estimate and [lower, upper] collapses onto it.
  bool exact = false;
  /// Fraction of published rows covered by the responding nodes
  /// (covered_rows / total_rows, both exact integers below).
  double covered_mass = 0.0;
  uint64_t covered_rows = 0;
  uint64_t total_rows = 0;
  /// Hard bounds on the true full-fleet estimate: the missing rows'
  /// contribution is bounded by the missing row count (COUNT) or by it
  /// times the measure attribute's maximum absolute value (SUM).
  double lower = 0.0;
  double upper = 0.0;
  /// Per-node ladder outcomes, indexed by node. kNoShard for nodes outside
  /// the query; ClassOf() gives the coarse ok/timeout/unavailable view.
  std::vector<obs::ReasonCode> reasons;
  /// Causal identity of this query: every trace span and flight-recorder
  /// event the query produced carries this id (allocated even when tracing
  /// is off, so recorder events stay matchable).
  uint64_t trace_id = 0;
  /// Virtual end-to-end latency: slowest node completion in the simulated
  /// parallel fan-out.
  uint64_t virtual_ns = 0;
  /// Hedges launched / won and transient retries spent on this query.
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t retries = 0;
};

/// The one true merge. Folding per-group exact partials in ascending global
/// group order with a single accumulator per aggregate reproduces the
/// single-node group-clustered estimate bit-for-bit (asserted against
/// AnatomyQueryEngine::CollectGroupPartials over the merged tables in
/// tests/dist_test.cc). Exposed so tests and the chaos harness can compute
/// reference answers with the identical float schedule.
struct CanonicalFoldResult {
  double count = 0.0;
  double sum = 0.0;
};
CanonicalFoldResult CanonicalFold(
    std::span<const AnatomyQueryEngine::GroupAggregatePartial> partials);

class ScatterGatherEstimator {
 public:
  /// `cluster` must outlive the estimator.
  ScatterGatherEstimator(DistCluster* cluster,
                         const DistQueryOptions& options = {});

  /// COUNT or SUM (kAvg is rejected: it does not decompose into per-node
  /// partial aggregates without changing the float schedule). Returns a
  /// clean kUnavailable error when no node responds, otherwise an
  /// honestly-labeled estimate per the ladder above.
  StatusOr<PartialEstimate> Estimate(const AggregateQuery& query);

  /// The hedge delay the next query would use (exposed for tests).
  uint64_t CurrentHedgeDelayNs();

  /// Trace id of the most recent Estimate() call, including calls that
  /// returned an error (errors carry no PartialEstimate, but their flight
  /// events still need correlating).
  uint64_t last_trace_id() const { return last_trace_id_; }

  /// The estimator's running virtual clock: queries lay out sequentially on
  /// the merged virtual timeline starting here.
  uint64_t virtual_now_ns() const { return virtual_now_; }

 private:
  struct NodeAttempt {
    obs::ReasonCode reason = obs::ReasonCode::kNoShard;
    uint64_t finish_ns = 0;
    uint64_t rows = 0;
    std::vector<AnatomyQueryEngine::GroupAggregatePartial> partials;
  };
  /// Runs one node's full ladder (primary + hedge + retries) in virtual
  /// time, charging against the deadline. `stats` accumulates into the
  /// estimate being built; `ctx` carries the query's causal identity (node
  /// spans become children of the query's root span, stamped with virtual
  /// time from ctx.virtual_start_ns).
  NodeAttempt QueryNode(size_t i, const CountQuery& predicates, bool need_sum,
                        size_t measure_qi, Rng& rng, PartialEstimate* stats,
                        const obs::TraceContext& ctx);

  DistCluster* cluster_;
  DistQueryOptions options_;
  obs::SlidingQuantile latency_;
  uint64_t query_index_ = 0;
  uint64_t virtual_now_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace anatomy

#endif  // ANATOMY_DIST_SCATTER_GATHER_H_
