// Seeded chaos harness for the distributed serving stack.
//
// Sweeps a deterministic scenario matrix — serve-time fault modes (heavy-
// tailed stalls, transient I/O failures, a corrupted manifest root) crossed
// with coordinator kill points of the two-phase epoch swap, over several
// seeds — and asserts the system's single safety contract on every query:
//
//   every response is EXACT (bit-identical to the single-node fold over the
//   merged tables), or an honestly-labeled PARTIAL (its value is the exact
//   fold over precisely the groups of the nodes that responded, its
//   covered_mass is those nodes' true row fraction, and its bounds contain
//   the true full answer), or a CLEAN ERROR. Never a silently wrong number.
//
// For kill scenarios the harness additionally heals the disks, runs
// Recover(), and asserts the fleet landed on one consistent epoch — the old
// one for kills before the commit write, the new one after — with zero
// orphan pages on any disk.
//
// Every degraded response must also be EXPLAINED: for each non-exact answer
// the harness looks up the flight recorder (src/obs/flightrec.h) and
// requires a matching event — same trace_id, same node, same ReasonCode for
// each degraded node of a partial answer; a query-unavailable event for each
// clean error. A degradation the recorder cannot account for is a
// violation, exactly like a wrong number.
//
// Everything is virtual-time and seeded: the full sweep runs in well under a
// second and reproduces bit-for-bit, which is what lets it sit in tier-1
// ctest (tests/chaos_test.cc) instead of a nightly soak.

#ifndef ANATOMY_DIST_CHAOS_H_
#define ANATOMY_DIST_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace anatomy {

struct ChaosOptions {
  size_t nodes = 3;
  RowId rows = 600;
  int l = 3;
  /// Scenario replicas: seeds 0..seeds-1 (each derives all of the
  /// scenario's RNG streams).
  uint64_t seeds = 4;
  size_t queries_per_scenario = 12;
  uint64_t base_seed = 0xC405;
  /// Per-query deadline of the scatter-gather coordinator.
  uint64_t deadline_ns = 5'000'000;
};

struct ChaosReport {
  size_t scenarios = 0;
  size_t queries = 0;
  /// Response classification over all scenario queries.
  size_t exact = 0;
  size_t partial = 0;
  size_t unavailable = 0;
  /// Degraded responses (partial + unavailable) whose cause was matched to a
  /// flight-recorder event. The sweep asserts this equals partial +
  /// unavailable — every degradation explained, none hand-waved.
  size_t explained = 0;
  /// Kill scenarios recovered, split by where they landed.
  size_t recoveries = 0;
  size_t rolled_back = 0;   // old epoch (kill before the commit write)
  size_t swapped = 0;       // new epoch (kill after it)
  /// Safety-contract violations, human-readable and scenario-tagged.
  /// The sweep passes iff this is empty.
  std::vector<std::string> violations;
};

/// Synthetic eligible microdata for chaos runs: random QI codes and a
/// round-robin sensitive assignment over a 3l-value domain, so every prefix
/// satisfies the eligibility condition and publication never fails for data
/// reasons. Exposed for tests and the serving benchmark.
Microdata MakeChaosMicrodata(RowId rows, int l, uint64_t seed);

/// Runs the full sweep. Status errors are harness failures (e.g. the
/// fault-free baseline publish failed); contract violations are reported in
/// ChaosReport::violations instead, so one bad scenario doesn't mask the
/// rest.
StatusOr<ChaosReport> RunChaosSweep(const ChaosOptions& options);

}  // namespace anatomy

#endif  // ANATOMY_DIST_CHAOS_H_
