// DistNode: one storage node of the simulated multi-node deployment.
//
// A node owns the full single-node storage stack — a SimulatedDisk wrapped
// in a FaultInjectingDisk, and a BufferPool with bounded retry — plus the
// serving state for its shard of the publication: the crash-consistent
// manifest of the shard's QIT/ST, the in-memory published view rebuilt from
// those files, and a group-clustered AnatomyQueryEngine over it.
//
// Serving is simulated in VIRTUAL time: Serve() returns the partial
// aggregates together with the service duration the call would have taken
// (base latency + seeded uniform jitter + any stall the fault schedule
// injected into the per-request storage probe). Nothing sleeps; the
// coordinator (src/dist/scatter_gather.h) charges the duration against the
// query deadline, which is what makes the chaos harness deterministic and
// fast while still exercising real deadline/hedge/retry logic.
//
// Group ids: the node's own tables use dense local ids [0, group_count);
// Serve() translates to global ids by the epoch's group offset, so the
// coordinator can merge partials from different nodes without a mapping
// table.
//
// Thread safety: none. Each node is driven by one coordinator at a time
// (the scatter-gather fan-out is itself simulated sequentially).

#ifndef ANATOMY_DIST_NODE_H_
#define ANATOMY_DIST_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "anatomy/anatomized_tables.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/trace.h"
#include "query/estimator_scratch.h"
#include "query/group_kernels.h"
#include "query/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/publication.h"
#include "storage/simulated_disk.h"
#include "table/schema.h"

namespace anatomy {

struct DistNodeOptions {
  /// BufferPool frames for the node's publish pipeline and recovery reads.
  size_t pool_pages = kDefaultPoolPages;
  /// Seed of the node's FaultInjectingDisk (construction-time schedule is
  /// fault-free; chaos arms faults later via fault_disk()->ReArm()).
  uint64_t fault_seed = 1;
  /// Virtual service time of one Serve call: base + Uniform[0, jitter).
  uint64_t base_service_ns = 200'000;
  uint64_t service_jitter_ns = 100'000;
};

class DistNode {
 public:
  explicit DistNode(const DistNodeOptions& options);
  DistNode(const DistNode&) = delete;
  DistNode& operator=(const DistNode&) = delete;

  /// The faulted device every I/O path of this node goes through.
  FaultInjectingDisk* fault_disk() { return &faults_; }
  Disk* disk() { return &faults_; }
  SimulatedDisk* base_disk() { return &base_; }
  BufferPool* pool() { return &pool_; }

  /// Installs the node's serving state for an epoch: reads the committed
  /// QIT/ST back from the manifest, reconstructs the published tables
  /// (schema from the shared data dictionary `qi_defs` + `sensitive_def`),
  /// and builds the clustered query engine. On failure the node is left
  /// deactivated — it then answers Serve() with a permanent error, which the
  /// coordinator reports as node-unavailable degradation, never as a wrong
  /// number.
  Status Activate(const StorageManifest& manifest, uint64_t epoch,
                  GroupId group_count, GroupId group_offset,
                  const std::vector<AttributeDef>& qi_defs,
                  const AttributeDef& sensitive_def);

  /// Drops the serving state (the on-disk publication is untouched).
  void Deactivate();

  bool active() const { return engine_ != nullptr; }
  uint64_t epoch() const { return epoch_; }
  GroupId group_count() const { return group_count_; }
  GroupId group_offset() const { return group_offset_; }
  /// QIT rows served by this node (its share of the coverage denominator).
  uint64_t rows() const { return rows_; }
  const StorageManifest& manifest() const { return manifest_; }

  struct ServeResult {
    /// OK, transient (retryable by the coordinator), or permanent.
    Status status;
    /// Server-side deadline propagation: the drawn service time already
    /// exceeded the request's budget, so the node skipped the estimate
    /// computation. status is OK but partials are empty.
    bool late = false;
    /// Virtual duration of this call (base + jitter + injected stalls).
    uint64_t service_ns = 0;
    /// The node's rows (repeated here so the gather step can account
    /// coverage without a side lookup).
    uint64_t rows = 0;
    /// Per-group exact partials, group ids already global.
    std::vector<AnatomyQueryEngine::GroupAggregatePartial> partials;
  };

  /// One simulated request. `budget_ns` is the deadline budget the
  /// coordinator propagates; `rng` supplies the jitter draw (exactly one per
  /// call, so coordinator-side replay is deterministic). Every call probes
  /// the manifest root on the faulted disk — that read is where crashes,
  /// transients, corruption, and stalls of the node's device surface.
  ///
  /// `trace`, when non-null and recording, carries the coordinator's causal
  /// identity: the call emits virtual-time child spans (serve/probe/partials)
  /// on the context's lane under the context's parent span, so a merged
  /// export shows all N nodes of a query on one timeline.
  ServeResult Serve(const CountQuery& query, bool need_sum, size_t measure_qi,
                    uint64_t budget_ns, Rng& rng,
                    const obs::TraceContext* trace = nullptr);

 private:
  DistNodeOptions options_;
  SimulatedDisk base_;
  FaultInjectingDisk faults_;
  BufferPool pool_;

  StorageManifest manifest_;
  uint64_t epoch_ = 0;
  GroupId group_count_ = 0;
  GroupId group_offset_ = 0;
  uint64_t rows_ = 0;
  std::unique_ptr<AnatomizedTables> tables_;
  std::unique_ptr<AnatomyQueryEngine> engine_;
  EstimatorScratch scratch_;
};

}  // namespace anatomy

#endif  // ANATOMY_DIST_NODE_H_
