#include "dist/cluster.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/page.h"

namespace anatomy {
namespace {

// Flight-recorder append for the publish/recover pipeline. Wall-clock
// stamped: epoch swaps run in real time, unlike the virtual serving path.
void LogEpochFlight(obs::FlightEventType type, obs::ReasonCode reason,
                    uint64_t epoch, int32_t node, int64_t detail) {
  obs::FlightRecord r;
  r.t_ns = obs::TraceRecorder::Global().NowNs();
  r.detail = detail;
  r.epoch = epoch;
  r.node = node;
  r.type = type;
  r.reason = reason;
  obs::FlightRecorder::Global().Log(r);
}

// Epoch record page layout, int32 slots:
//   [0] magic 'EPOC'  [1] version  [2..3] epoch (64b)  [4] node count
//   [5..6] total rows (64b)  then kNodeSlots per node starting at slot 8:
//   root, prev_root, group_count, rows (64b), reserved.
constexpr int32_t kEpochMagic = 0x45504F43;  // 'EPOC'
constexpr int32_t kEpochVersion = 1;
constexpr size_t kNodeBaseSlot = 8;
constexpr size_t kNodeSlots = 6;
constexpr size_t kMaxNodes = 64;

int32_t Slot(const Page& page, size_t slot) {
  return page.ReadInt32(slot * sizeof(int32_t));
}
void SetSlot(Page& page, size_t slot, int32_t v) {
  page.WriteInt32(slot * sizeof(int32_t), v);
}
void SetSlot64(Page& page, size_t slot, uint64_t v) {
  SetSlot(page, slot, static_cast<int32_t>(v & 0xFFFFFFFFu));
  SetSlot(page, slot + 1, static_cast<int32_t>(v >> 32));
}
uint64_t Slot64(const Page& page, size_t slot) {
  const uint64_t lo = static_cast<uint32_t>(Slot(page, slot));
  const uint64_t hi = static_cast<uint32_t>(Slot(page, slot + 1));
  return lo | (hi << 32);
}

Status Killed(const char* where) {
  return Status::Unavailable(
      std::string("coordinator killed at ") + where + " (simulated)");
}

}  // namespace

DistCluster::DistCluster(const DistClusterOptions& options)
    : options_(options),
      coord_faults_(&coord_base_,
                    FaultSpec{.seed = SplitMix64(options.seed ^ 0xC00D)}) {
  ANATOMY_CHECK(options.nodes >= 1 && options.nodes <= kMaxNodes);
  nodes_.reserve(options.nodes);
  for (size_t i = 0; i < options.nodes; ++i) {
    DistNodeOptions node_options = options.node;
    node_options.fault_seed =
        SplitMix64(options.seed ^ (0xD15C + static_cast<uint64_t>(i)));
    nodes_.push_back(std::make_unique<DistNode>(node_options));
  }
  record_page_ = coord_faults_.AllocatePage();
  record_.nodes.resize(options.nodes);
  // Construction happens on fault-free disks; the epoch-0 write cannot fail.
  const Status s = WriteEpochRecord(record_);
  ANATOMY_CHECK(s.ok());
}

Status DistCluster::WriteEpochRecord(const EpochRecord& record) {
  ANATOMY_CHECK(record.nodes.size() == nodes_.size());
  Page page;
  page.Clear();
  SetSlot(page, 0, kEpochMagic);
  SetSlot(page, 1, kEpochVersion);
  SetSlot64(page, 2, record.epoch);
  SetSlot(page, 4, static_cast<int32_t>(record.nodes.size()));
  SetSlot64(page, 5, record.total_rows);
  for (size_t i = 0; i < record.nodes.size(); ++i) {
    const NodeEpochInfo& info = record.nodes[i];
    const size_t b = kNodeBaseSlot + i * kNodeSlots;
    SetSlot(page, b, static_cast<int32_t>(info.root));
    SetSlot(page, b + 1, static_cast<int32_t>(info.prev_root));
    SetSlot(page, b + 2, static_cast<int32_t>(info.group_count));
    SetSlot64(page, b + 3, info.rows);
  }
  return RunWithRetry(options_.commit_retry, nullptr, [&] {
    return coord_faults_.WritePage(record_page_, page);
  });
}

StatusOr<EpochRecord> DistCluster::ReadEpochRecord() {
  Page page;
  ANATOMY_RETURN_IF_ERROR(RunWithRetry(options_.commit_retry, nullptr, [&] {
    return coord_faults_.ReadPage(record_page_, page);
  }));
  if (Slot(page, 0) != kEpochMagic || Slot(page, 1) != kEpochVersion) {
    return Status::DataLoss("epoch record lost its signature");
  }
  EpochRecord record;
  record.epoch = Slot64(page, 2);
  const size_t n = static_cast<size_t>(Slot(page, 4));
  if (n != nodes_.size()) {
    return Status::FailedPrecondition(
        "epoch record names " + std::to_string(n) + " nodes but the fleet "
        "has " + std::to_string(nodes_.size()));
  }
  record.total_rows = Slot64(page, 5);
  record.nodes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = kNodeBaseSlot + i * kNodeSlots;
    record.nodes[i].root = static_cast<PageId>(Slot(page, b));
    record.nodes[i].prev_root = static_cast<PageId>(Slot(page, b + 1));
    record.nodes[i].group_count = static_cast<GroupId>(Slot(page, b + 2));
    record.nodes[i].rows = Slot64(page, b + 3);
  }
  return record;
}

size_t DistCluster::SweepOrphans(size_t i, const StorageManifest* current) {
  std::unordered_set<PageId> owned;
  if (current != nullptr) {
    owned.insert(current->manifest_pages.begin(),
                 current->manifest_pages.end());
    owned.insert(current->qit.pages.begin(), current->qit.pages.end());
    owned.insert(current->st.pages.begin(), current->st.pages.end());
  }
  Disk* disk = nodes_[i]->disk();
  size_t swept = 0;
  for (PageId p : disk->LivePages()) {
    if (owned.count(p) != 0) continue;
    disk->FreePage(p);
    ++swept;
  }
  return swept;
}

StatusOr<EpochPublishReport> DistCluster::PublishEpoch(
    const Microdata& microdata, SwapKillPoint kill) {
  ANATOMY_RETURN_IF_ERROR(microdata.Validate());
  if (!have_schema_) {
    for (size_t i = 0; i < microdata.d(); ++i) {
      qi_defs_.push_back(microdata.qi_attribute(i));
    }
    sensitive_def_ = microdata.sensitive_attribute();
    have_schema_ = true;
  }

  // ---- PREPARE: each node publishes its shard next to the old epoch's
  // publication. All-or-none across shards; on failure the fleet is
  // untouched and still serves the old epoch. ----
  const uint64_t next_epoch = record_.epoch + 1;
  ShardedAnatomizerOptions aopts;
  aopts.l = options_.l;
  aopts.seed = SplitMix64(options_.seed ^ next_epoch);
  aopts.shards = nodes_.size();
  aopts.num_threads = options_.publish_threads;
  std::vector<Disk*> disks;
  std::vector<BufferPool*> pools;
  for (auto& node : nodes_) {
    disks.push_back(node->disk());
    pools.push_back(node->pool());
  }
  ShardedExternalAnatomizer anatomizer(aopts);
  StatusOr<ShardedPublishResult> pub_or =
      anatomizer.RunPublished(microdata, disks, pools);
  if (!pub_or.ok()) {
    LogEpochFlight(obs::FlightEventType::kEpochPrepare,
                   obs::ReasonCode::kPrepareFailed, next_epoch, -1, 0);
    obs::FlightRecorder::Global().MaybeDumpOnError("publish: prepare failed");
    return pub_or.status();
  }
  ShardedPublishResult pub = std::move(pub_or).value();
  LogEpochFlight(obs::FlightEventType::kEpochPrepare, obs::ReasonCode::kNone,
                 next_epoch, -1, static_cast<int64_t>(pub.shards_run));

  EpochRecord next;
  next.epoch = next_epoch;
  next.nodes.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    next.nodes[i].prev_root = record_.nodes[i].root;
    if (i < pub.manifests.size()) {
      next.nodes[i].root = pub.manifests[i].root;
      next.nodes[i].group_count =
          static_cast<GroupId>(pub.shard_partitions[i].num_groups());
      next.nodes[i].rows = pub.manifests[i].qit.records;
      next.total_rows += next.nodes[i].rows;
    }
  }

  if (kill == SwapKillPoint::kAfterPrepare) {
    LogEpochFlight(obs::FlightEventType::kEpochPrepare,
                   obs::ReasonCode::kCoordinatorKilled, next_epoch, -1, 0);
    obs::FlightRecorder::Global().MaybeDumpOnError("publish: killed after-prepare");
    return Killed("after-prepare");
  }
  if (kill == SwapKillPoint::kBeforeCommit) {
    LogEpochFlight(obs::FlightEventType::kEpochCommit,
                   obs::ReasonCode::kCoordinatorKilled, next_epoch, -1,
                   /*detail=*/0);  // 0 = killed before the record write
    obs::FlightRecorder::Global().MaybeDumpOnError("publish: killed before-commit");
    return Killed("before-commit");
  }

  // ---- COMMIT: the atomic flip. On a failed record write the prepared
  // publications are rolled back — the old epoch stays the only epoch. ----
  Status commit = WriteEpochRecord(next);
  if (!commit.ok()) {
    for (size_t i = 0; i < pub.manifests.size(); ++i) {
      (void)DiscardPublication(nodes_[i]->disk(), nodes_[i]->pool(),
                               pub.manifests[i]);
    }
    LogEpochFlight(obs::FlightEventType::kEpochCommit,
                   obs::ReasonCode::kCommitFailed, next_epoch, -1, 0);
    obs::FlightRecorder::Global().MaybeDumpOnError("publish: commit failed");
    return Status(commit.code(),
                  "epoch record commit failed (prepared publications rolled "
                  "back): " + commit.message());
  }
  record_ = next;
  LogEpochFlight(obs::FlightEventType::kEpochCommit, obs::ReasonCode::kNone,
                 next_epoch, -1, 0);

  if (kill == SwapKillPoint::kAfterCommit) {
    LogEpochFlight(obs::FlightEventType::kEpochActivate,
                   obs::ReasonCode::kCoordinatorKilled, next_epoch, -1,
                   /*detail=*/1);  // 1 = the commit landed first
    obs::FlightRecorder::Global().MaybeDumpOnError("publish: killed after-commit");
    return Killed("after-commit");
  }

  // ---- ACTIVATE: nodes load the new epoch. A failed activation leaves the
  // node serving nothing (degraded) — never the old epoch. ----
  EpochPublishReport report;
  report.epoch = next.epoch;
  report.shards_run = pub.shards_run;
  report.merged_shards = pub.merged_shards;
  GroupId offset = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (next.nodes[i].root == kInvalidPageId) {
      nodes_[i]->Deactivate();
      continue;
    }
    const Status s = nodes_[i]->Activate(pub.manifests[i], next.epoch,
                                         next.nodes[i].group_count, offset,
                                         qi_defs_, sensitive_def_);
    if (!s.ok()) {
      nodes_[i]->Deactivate();
      ++report.activation_failures;
      LogEpochFlight(obs::FlightEventType::kEpochActivate,
                     obs::ReasonCode::kActivationFailed, next.epoch,
                     static_cast<int32_t>(i), 0);
    }
    offset += next.nodes[i].group_count;
  }
  LogEpochFlight(obs::FlightEventType::kEpochActivate, obs::ReasonCode::kNone,
                 next.epoch, -1,
                 static_cast<int64_t>(report.activation_failures));
  if (report.activation_failures > 0) {
    obs::FlightRecorder::Global().MaybeDumpOnError(
        "publish: node activation failed");
  }

  // ---- GC: discard everything the new epoch does not own (the old
  // publications). The sweep is idempotent, so a crash mid-GC just leaves
  // work for Recover(). ----
  size_t swept = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->pool()->DropAll();
    swept += SweepOrphans(i, i < pub.manifests.size() ? &pub.manifests[i]
                                                      : nullptr);
    if (kill == SwapKillPoint::kMidGc && i == 0) {
      LogEpochFlight(obs::FlightEventType::kEpochGc,
                     obs::ReasonCode::kCoordinatorKilled, next.epoch,
                     static_cast<int32_t>(i), static_cast<int64_t>(swept));
      obs::FlightRecorder::Global().MaybeDumpOnError("publish: killed mid-gc");
      return Killed("mid-gc");
    }
  }
  LogEpochFlight(obs::FlightEventType::kEpochGc, obs::ReasonCode::kNone,
                 next.epoch, -1, static_cast<int64_t>(swept));

  if (obs::MetricsEnabled()) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    registry.GetCounter("dist.epochs_published")->Increment();
    registry.GetCounter("dist.activation_failures")
        ->Increment(report.activation_failures);
  }
  return report;
}

Status DistCluster::Recover() {
  for (auto& node : nodes_) {
    node->pool()->DropAll();
    node->Deactivate();
  }
  StatusOr<EpochRecord> record_or = ReadEpochRecord();
  if (!record_or.ok()) {
    LogEpochFlight(obs::FlightEventType::kRecovery,
                   obs::ReasonCode::kPermanentError, record_.epoch, -1, 0);
    obs::FlightRecorder::Global().MaybeDumpOnError(
        "recover: epoch record unreadable");
    return record_or.status();
  }
  record_ = std::move(record_or).value();
  if (record_.epoch > 0 && !have_schema_) {
    return Status::FailedPrecondition(
        "cannot recover serving state without the data dictionary");
  }

  GroupId offset = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeEpochInfo& info = record_.nodes[i];
    if (info.root == kInvalidPageId) {
      // No shard this epoch: everything on the disk is a leftover.
      SweepOrphans(i, nullptr);
      continue;
    }
    const RetryPolicy& retry = nodes_[i]->pool()->retry_policy();
    StatusOr<StorageManifest> manifest =
        LoadPublication(nodes_[i]->disk(), info.root, retry);
    Status ok = manifest.ok()
                    ? VerifyPublication(nodes_[i]->disk(), manifest.value(),
                                        retry)
                    : manifest.status();
    if (ok.ok()) {
      ok = nodes_[i]->Activate(manifest.value(), record_.epoch,
                               info.group_count, offset, qi_defs_,
                               sensitive_def_);
    }
    if (ok.ok()) {
      // Only with the current manifest positively identified is it safe to
      // free the rest; a node whose publication cannot be loaded keeps its
      // pages (and serves nothing) rather than risk destroying data.
      SweepOrphans(i, &manifest.value());
    } else {
      nodes_[i]->Deactivate();
      LogEpochFlight(obs::FlightEventType::kRecovery,
                     obs::ReasonCode::kActivationFailed, record_.epoch,
                     static_cast<int32_t>(i), 0);
    }
    offset += info.group_count;
  }
  LogEpochFlight(obs::FlightEventType::kRecovery, obs::ReasonCode::kNone,
                 record_.epoch, -1, 0);
  if (obs::MetricsEnabled()) {
    obs::MetricRegistry::Global().GetCounter("dist.recoveries")->Increment();
  }
  return Status::OK();
}

StatusOr<AnatomizedTables> DistCluster::BuildMergedTables() {
  if (!have_schema_) {
    return Status::FailedPrecondition("no epoch has been published");
  }
  GroupId total_groups = 0;
  for (const NodeEpochInfo& info : record_.nodes) {
    if (info.root != kInvalidPageId) total_groups += info.group_count;
  }
  if (total_groups == 0) {
    return Status::FailedPrecondition("current epoch has no publication");
  }

  const size_t d = qi_defs_.size();
  const AttributeDef group_def = MakeNumerical(
      "Group-ID", static_cast<Code>(total_groups), /*base=*/1);
  std::vector<AttributeDef> qit_defs = qi_defs_;
  qit_defs.push_back(group_def);
  Table qit(std::make_shared<Schema>(std::move(qit_defs)));
  qit.Reserve(static_cast<RowId>(record_.total_rows));
  std::vector<AttributeDef> st_defs;
  st_defs.push_back(group_def);
  st_defs.push_back(sensitive_def_);
  st_defs.push_back(MakeNumerical(
      "Count", static_cast<Code>(record_.total_rows) + 1));
  Table st(std::make_shared<Schema>(std::move(st_defs)));

  // Concatenate in node order: per-group row order is each node's published
  // group-major order, the same order the node's own engine serves — the
  // invariant the bit-identical merge rests on.
  GroupId offset = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeEpochInfo& info = record_.nodes[i];
    if (info.root == kInvalidPageId) continue;
    const RetryPolicy& retry = nodes_[i]->pool()->retry_policy();
    ANATOMY_ASSIGN_OR_RETURN(
        StorageManifest manifest,
        LoadPublication(nodes_[i]->disk(), info.root, retry));
    ANATOMY_ASSIGN_OR_RETURN(
        auto qit_records,
        ReadPublishedFile(nodes_[i]->disk(), manifest.qit, retry));
    ANATOMY_ASSIGN_OR_RETURN(
        auto st_records,
        ReadPublishedFile(nodes_[i]->disk(), manifest.st, retry));
    for (auto& rec : qit_records) {
      rec[d] += static_cast<int32_t>(offset);
      qit.AppendRow(rec);
    }
    for (auto& rec : st_records) {
      rec[0] += static_cast<int32_t>(offset);
      st.AppendRow(rec);
    }
    offset += info.group_count;
  }
  return AnatomizedTables::FromPublishedTables(std::move(qit), std::move(st));
}

}  // namespace anatomy
