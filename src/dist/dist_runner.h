// End-to-end distributed serving run: publish an epoch onto an N-node
// cluster, drive a mixed COUNT/SUM workload through the scatter-gather
// estimator (optionally with serve-time faults armed), and report response
// classes, hedge/retry activity, and virtual-latency quantiles. Backs
// bench/bench_dist_serving and the tools that want one-call numbers.

#ifndef ANATOMY_DIST_DIST_RUNNER_H_
#define ANATOMY_DIST_DIST_RUNNER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dist/scatter_gather.h"
#include "storage/fault_injection.h"
#include "table/table.h"

namespace anatomy {

struct DistServingOptions {
  size_t nodes = 4;
  RowId rows = 5000;
  int l = 4;
  uint64_t seed = 1;
  size_t num_queries = 2000;
  /// Fraction of SUM queries in the mix (rest are COUNTs).
  double sum_fraction = 0.5;
  /// Workload selectivity.
  double selectivity = 0.05;
  DistQueryOptions query;
  /// When true, every node's disk is re-armed with `serve_faults` (seed is
  /// offset per node) after publication, before the first query.
  bool arm_faults = false;
  FaultSpec serve_faults;
  /// SLO engine tick cadence in queries (virtual-time windows are deltas
  /// between ticks). 0 disables SLO evaluation.
  size_t slo_tick_every = 100;
  /// Latency objective: p-target of dist.query_ns must stay under the query
  /// deadline. Ratio objective: exact answers / queries must stay >= this.
  double slo_latency_target = 0.99;
  double slo_exact_target = 0.95;
};

struct DistServingReport {
  uint64_t epoch = 0;
  size_t nodes_with_shards = 0;
  uint64_t total_rows = 0;
  size_t queries = 0;
  size_t exact = 0;
  size_t partial = 0;
  size_t unavailable = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t retries = 0;
  /// Virtual end-to-end latency quantiles over all answered queries.
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
  /// Mean covered mass over the partial responses (1.0 when none).
  double mean_partial_coverage = 1.0;
  /// SLO engine results (zero/empty when slo_tick_every == 0).
  uint64_t slo_ticks = 0;
  uint64_t slo_transitions = 0;
  bool slo_firing = false;
  /// Full SloEngine::ReportJson() blob for machine consumers.
  std::string slo_json;

  std::string ToString() const;
};

/// Publishes MakeChaosMicrodata(rows, l, seed) onto a fresh cluster and runs
/// the workload. Deterministic from `options` alone.
StatusOr<DistServingReport> RunDistServingWorkload(
    const DistServingOptions& options);

}  // namespace anatomy

#endif  // ANATOMY_DIST_DIST_RUNNER_H_
