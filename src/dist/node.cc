#include "dist/node.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace anatomy {

DistNode::DistNode(const DistNodeOptions& options)
    : options_(options),
      faults_(&base_, FaultSpec{.seed = options.fault_seed}),
      pool_(&faults_, options.pool_pages) {}

Status DistNode::Activate(const StorageManifest& manifest, uint64_t epoch,
                          GroupId group_count, GroupId group_offset,
                          const std::vector<AttributeDef>& qi_defs,
                          const AttributeDef& sensitive_def) {
  Deactivate();
  const RetryPolicy& retry = pool_.retry_policy();
  ANATOMY_ASSIGN_OR_RETURN(auto qit_records,
                           ReadPublishedFile(&faults_, manifest.qit, retry));
  ANATOMY_ASSIGN_OR_RETURN(auto st_records,
                           ReadPublishedFile(&faults_, manifest.st, retry));
  if (manifest.qit.fields != qi_defs.size() + 1) {
    return Status::FailedPrecondition(
        "published QIT has " + std::to_string(manifest.qit.fields) +
        " fields but the data dictionary names " +
        std::to_string(qi_defs.size()) + " QI attributes");
  }

  // Rebuild the published tables with the shared data dictionary. Group ids
  // on disk are node-local and dense, exactly what FromPublishedTables
  // validates; Serve() adds the epoch's offset when answering.
  const AttributeDef group_def = MakeNumerical(
      "Group-ID", static_cast<Code>(group_count), /*base=*/1);
  std::vector<AttributeDef> qit_defs = qi_defs;
  qit_defs.push_back(group_def);
  Table qit(std::make_shared<Schema>(std::move(qit_defs)));
  qit.Reserve(static_cast<RowId>(qit_records.size()));
  for (const auto& rec : qit_records) qit.AppendRow(rec);

  std::vector<AttributeDef> st_defs;
  st_defs.push_back(group_def);
  st_defs.push_back(sensitive_def);
  st_defs.push_back(MakeNumerical(
      "Count", static_cast<Code>(qit_records.size()) + 1));
  Table st(std::make_shared<Schema>(std::move(st_defs)));
  for (const auto& rec : st_records) st.AppendRow(rec);

  ANATOMY_ASSIGN_OR_RETURN(AnatomizedTables tables,
                           AnatomizedTables::FromPublishedTables(
                               std::move(qit), std::move(st)));
  if (tables.num_groups() != group_count) {
    return Status::FailedPrecondition(
        "epoch record says " + std::to_string(group_count) +
        " groups but the publication holds " +
        std::to_string(tables.num_groups()));
  }
  tables_ = std::make_unique<AnatomizedTables>(std::move(tables));
  engine_ = std::make_unique<AnatomyQueryEngine>(*tables_, EstimatorOptions{});
  manifest_ = manifest;
  epoch_ = epoch;
  group_count_ = group_count;
  group_offset_ = group_offset;
  rows_ = manifest.qit.records;
  return Status::OK();
}

void DistNode::Deactivate() {
  engine_.reset();
  tables_.reset();
  manifest_ = StorageManifest{};
  epoch_ = 0;
  group_count_ = 0;
  group_offset_ = 0;
  rows_ = 0;
}

DistNode::ServeResult DistNode::Serve(const CountQuery& query, bool need_sum,
                                      size_t measure_qi, uint64_t budget_ns,
                                      Rng& rng,
                                      const obs::TraceContext* trace) {
  ServeResult out;
  out.rows = rows_;

  // Emits this request's virtual-time spans on the coordinator-chosen lane:
  // a "serve" span covering the whole call, with a "probe" child covering
  // the storage touch (its duration is the injected stall) and a "partials"
  // child covering the estimate compute. Tracing is strictly out-of-band —
  // nothing below feeds back into timing or results.
  auto emit_spans = [&](bool probed, uint64_t stall_ns, int64_t groups) {
    if (trace == nullptr || !trace->recording) return;
    obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
    if (!tracer.enabled()) return;
    const uint64_t start = trace->virtual_start_ns;
    obs::TraceEvent serve;
    serve.name = "dist.node.serve";
    serve.category = "dist";
    serve.start_ns = start;
    serve.dur_ns = out.service_ns;
    serve.trace_id = trace->trace_id;
    serve.span_id = obs::TraceRecorder::NewId();
    serve.parent_id = trace->parent_span;
    serve.lane = trace->lane;
    serve.virtual_time = true;
    serve.AddArg("rows", static_cast<int64_t>(out.rows));
    serve.AddArg("ok", out.status.ok() ? 1 : 0);
    serve.AddArg("late", out.late ? 1 : 0);
    tracer.RecordEvent(serve);
    if (probed) {
      obs::TraceEvent probe_ev;
      probe_ev.name = "dist.node.probe";
      probe_ev.category = "dist";
      probe_ev.start_ns = start;
      probe_ev.dur_ns = stall_ns;
      probe_ev.trace_id = trace->trace_id;
      probe_ev.span_id = obs::TraceRecorder::NewId();
      probe_ev.parent_id = serve.span_id;
      probe_ev.lane = trace->lane;
      probe_ev.virtual_time = true;
      probe_ev.AddArg("stall_ns", static_cast<int64_t>(stall_ns));
      tracer.RecordEvent(probe_ev);
    }
    if (groups >= 0) {
      obs::TraceEvent part_ev;
      part_ev.name = "dist.node.partials";
      part_ev.category = "dist";
      part_ev.start_ns = start + stall_ns;
      part_ev.dur_ns = out.service_ns - stall_ns;
      part_ev.trace_id = trace->trace_id;
      part_ev.span_id = obs::TraceRecorder::NewId();
      part_ev.parent_id = serve.span_id;
      part_ev.lane = trace->lane;
      part_ev.virtual_time = true;
      part_ev.AddArg("groups", groups);
      tracer.RecordEvent(part_ev);
    }
  };

  // Draw the jitter FIRST and unconditionally: one draw per Serve keeps the
  // coordinator's RNG stream aligned no matter how the call ends.
  const uint64_t jitter = options_.service_jitter_ns > 0
                              ? rng.NextBounded(options_.service_jitter_ns)
                              : 0;
  const uint64_t stall_before = faults_.fault_stats().stall_ns;

  if (!active()) {
    out.service_ns = options_.base_service_ns + jitter;
    out.status =
        Status::FailedPrecondition("node has no active publication");
    emit_spans(/*probed=*/false, /*stall_ns=*/0, /*groups=*/-1);
    return out;
  }

  // The per-request storage touch: prove the publication is still reachable
  // on the (possibly faulted) device. Crashes and transients surface here as
  // their Status; stalls surface as extra virtual nanoseconds.
  Status probe = ProbePublicationRoot(&faults_, manifest_.root);
  const uint64_t stall_ns = faults_.fault_stats().stall_ns - stall_before;
  out.service_ns = options_.base_service_ns + jitter + stall_ns;
  if (!probe.ok()) {
    out.status = std::move(probe);
    emit_spans(/*probed=*/true, stall_ns, /*groups=*/-1);
    return out;
  }
  if (out.service_ns > budget_ns) {
    // Deadline propagation: the coordinator will have hung up by the time
    // this response lands, so skip the compute entirely.
    out.late = true;
    emit_spans(/*probed=*/true, stall_ns, /*groups=*/-1);
    return out;
  }

  engine_->CollectGroupPartials(query, need_sum, measure_qi, scratch_,
                                &out.partials);
  for (auto& p : out.partials) p.group += group_offset_;
  emit_spans(/*probed=*/true, stall_ns,
             static_cast<int64_t>(out.partials.size()));
  return out;
}

}  // namespace anatomy
