#include "dist/dist_runner.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "dist/chaos.h"
#include "dist/cluster.h"
#include "obs/slo.h"
#include "workload/workload.h"

namespace anatomy {
namespace {

uint64_t NearestRank(std::vector<uint64_t>& v, double q) {
  if (v.empty()) return 0;
  const size_t rank = static_cast<size_t>(q * (v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + rank, v.end());
  return v[rank];
}

}  // namespace

std::string DistServingReport::ToString() const {
  return "epoch " + std::to_string(epoch) + ": " + std::to_string(queries) +
         " queries over " + std::to_string(nodes_with_shards) +
         " shard nodes (" + std::to_string(total_rows) + " rows) — " +
         std::to_string(exact) + " exact, " + std::to_string(partial) +
         " partial (mean coverage " +
         std::to_string(mean_partial_coverage) + "), " +
         std::to_string(unavailable) + " unavailable; " +
         std::to_string(hedges) + " hedges (" + std::to_string(hedge_wins) +
         " wins), " + std::to_string(retries) + " retries; virtual p50 " +
         std::to_string(p50_ns / 1000) + "us p99 " +
         std::to_string(p99_ns / 1000) + "us max " +
         std::to_string(max_ns / 1000) + "us; slo " +
         std::to_string(slo_transitions) + " transitions (" +
         (slo_firing ? "FIRING" : "quiet") + ")";
}

StatusOr<DistServingReport> RunDistServingWorkload(
    const DistServingOptions& options) {
  const Microdata md =
      MakeChaosMicrodata(options.rows, options.l, options.seed);

  DistClusterOptions copts;
  copts.nodes = options.nodes;
  copts.l = options.l;
  copts.seed = options.seed;
  DistCluster cluster(copts);
  ANATOMY_ASSIGN_OR_RETURN(EpochPublishReport published,
                           cluster.PublishEpoch(md));

  if (options.arm_faults) {
    for (size_t i = 0; i < cluster.num_nodes(); ++i) {
      FaultSpec spec = options.serve_faults;
      spec.seed = SplitMix64(options.serve_faults.seed ^ (i + 1));
      cluster.node(i)->fault_disk()->ReArm(spec);
    }
  }

  ScatterGatherEstimator estimator(&cluster, options.query);
  MixedWorkloadOptions wopts;
  wopts.base.seed = SplitMix64(options.seed ^ 0x3A7);
  wopts.base.s = options.selectivity;
  wopts.base.num_queries = options.num_queries;
  wopts.sum_fraction = options.sum_fraction;
  ANATOMY_ASSIGN_OR_RETURN(MixedWorkloadGenerator generator,
                           MixedWorkloadGenerator::Create(md, wopts));

  DistServingReport report;
  report.epoch = published.epoch;
  report.total_rows = cluster.total_rows();
  for (const NodeEpochInfo& info : cluster.record().nodes) {
    if (info.root != kInvalidPageId) ++report.nodes_with_shards;
  }

  // SLO objectives over the dist counters/histograms the estimator already
  // records; baselined here so earlier runs in this process don't count
  // against this run's error budget. Window ticks advance on the
  // estimator's virtual clock, so burn rates are deterministic per seed.
  obs::SloEngine slo;
  if (options.slo_tick_every > 0) {
    obs::SloObjective latency;
    latency.name = "dist.p99_latency";
    latency.kind = obs::SloObjective::Kind::kLatencyThreshold;
    latency.histogram = "dist.query_ns";
    latency.threshold_ns = options.query.deadline_ns;
    latency.target = options.slo_latency_target;
    slo.AddObjective(latency);

    obs::SloObjective exact_ratio;
    exact_ratio.name = "dist.exact_ratio";
    exact_ratio.kind = obs::SloObjective::Kind::kGoodRatio;
    exact_ratio.good_counter = "dist.exact";
    exact_ratio.total_counter = "dist.queries";
    exact_ratio.target = options.slo_exact_target;
    slo.AddObjective(exact_ratio);
  }

  std::vector<uint64_t> latencies;
  latencies.reserve(options.num_queries);
  double coverage_sum = 0.0;
  for (size_t i = 0; i < options.num_queries; ++i) {
    const AggregateQuery query = generator.Next();
    ++report.queries;
    StatusOr<PartialEstimate> r = estimator.Estimate(query);
    if (options.slo_tick_every > 0 &&
        (i + 1) % options.slo_tick_every == 0) {
      slo.Tick(estimator.virtual_now_ns());
    }
    if (!r.ok()) {
      ++report.unavailable;
      continue;
    }
    const PartialEstimate& est = r.value();
    latencies.push_back(est.virtual_ns);
    report.hedges += est.hedges;
    report.hedge_wins += est.hedge_wins;
    report.retries += est.retries;
    if (est.exact) {
      ++report.exact;
    } else {
      ++report.partial;
      coverage_sum += est.covered_mass;
    }
  }
  if (report.partial > 0) {
    report.mean_partial_coverage =
        coverage_sum / static_cast<double>(report.partial);
  }
  report.p50_ns = NearestRank(latencies, 0.50);
  report.p99_ns = NearestRank(latencies, 0.99);
  for (uint64_t v : latencies) report.max_ns = std::max(report.max_ns, v);
  if (options.slo_tick_every > 0) {
    // A closing tick so the tail of the run is inside some window.
    slo.Tick(estimator.virtual_now_ns());
    report.slo_ticks = slo.ticks();
    report.slo_transitions = slo.TotalTransitions();
    report.slo_firing = slo.AnyFiring();
    report.slo_json = slo.ReportJson();
  }
  return report;
}

}  // namespace anatomy
