#include "dist/scatter_gather.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace anatomy {

namespace {

// One flight-recorder append. Log() itself is a single relaxed load when
// recording is disabled, so this is safe on the per-attempt path.
void LogFlight(obs::FlightEventType type, obs::ReasonCode reason, uint64_t t_ns,
               uint64_t trace_id, uint64_t epoch, int32_t node,
               int64_t detail) {
  obs::FlightRecord r;
  r.t_ns = t_ns;
  r.trace_id = trace_id;
  r.detail = detail;
  r.epoch = epoch;
  r.node = node;
  r.type = type;
  r.reason = reason;
  obs::FlightRecorder::Global().Log(r);
}

}  // namespace

// noinline is load-bearing: the fold's bit-identity contract requires every
// caller (the estimator, the chaos harness, the tests) to run the SAME
// machine code. Inlined copies may be FP-contracted differently (FMA under
// -march=native + -ffp-contract=fast) than the out-of-line symbol, which
// breaks exact == comparisons by one ULP.
__attribute__((noinline)) CanonicalFoldResult CanonicalFold(
    std::span<const AnatomyQueryEngine::GroupAggregatePartial> partials) {
  CanonicalFoldResult r;
  for (const auto& p : partials) {
    // Same schedule as the group-clustered kernels: mass * (1/|g|), then one
    // accumulator per aggregate in ascending global group order.
    const double w =
        static_cast<double>(p.mass) * (1.0 / static_cast<double>(p.size));
    r.count += w * static_cast<double>(p.match);
    r.sum += w * p.value_sum;
  }
  return r;
}

ScatterGatherEstimator::ScatterGatherEstimator(DistCluster* cluster,
                                               const DistQueryOptions& options)
    : cluster_(cluster),
      options_(options),
      latency_(std::max<size_t>(options.hedge_quantile_window, 1)) {
  // The retry schedule always jitters: synchronized retries from a fan-out
  // are exactly the thundering herd full jitter exists to break up.
  options_.retry.full_jitter = true;
}

uint64_t ScatterGatherEstimator::CurrentHedgeDelayNs() {
  // Before enough samples exist to trust a tail quantile, hedge at a fixed
  // fraction of the deadline rather than not at all.
  const uint64_t delay =
      latency_.count() >= 16 ? latency_.Quantile(options_.hedge_quantile)
                             : options_.deadline_ns / 4;
  return std::max(delay, options_.min_hedge_delay_ns);
}

ScatterGatherEstimator::NodeAttempt ScatterGatherEstimator::QueryNode(
    size_t i, const CountQuery& predicates, bool need_sum, size_t measure_qi,
    Rng& rng, PartialEstimate* stats, const obs::TraceContext& ctx) {
  NodeAttempt out;
  DistNode* node = cluster_->node(i);
  const uint64_t deadline = options_.deadline_ns;
  const uint64_t hedge_delay = CurrentHedgeDelayNs();
  const int max_attempts =
      options_.retry.max_attempts > 0 ? options_.retry.max_attempts : 1;
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const uint64_t epoch = cluster_->epoch();
  const int32_t node_id = static_cast<int32_t>(i);

  uint64_t now = 0;
  bool hedged = false;
  for (int attempt = 0;; ++attempt) {
    if (now >= deadline) {
      out.reason = obs::ReasonCode::kDeadlineExhausted;
      out.finish_ns = deadline;
      return out;
    }
    obs::TraceContext attempt_ctx = ctx;
    attempt_ctx.virtual_start_ns = ctx.virtual_start_ns + now;
    DistNode::ServeResult primary = node->Serve(
        predicates, need_sum, measure_qi, deadline - now, rng, &attempt_ctx);
    const uint64_t primary_finish = now + primary.service_ns;
    const bool primary_ok = primary.status.ok() && !primary.late;
    if (primary.late) registry.GetCounter("dist.deadline_propagated")->Increment();

    // Hedge: a duplicate launched hedge_delay after the primary, if the
    // primary is still outstanding by then. At most one per node per query.
    DistNode::ServeResult hedge;
    uint64_t hedge_start = 0;
    uint64_t hedge_finish = 0;
    bool hedge_ok = false;
    bool hedge_launched = false;
    if (options_.hedging && !hedged && primary.service_ns > hedge_delay &&
        now + hedge_delay < deadline) {
      hedged = true;
      hedge_launched = true;
      ++stats->hedges;
      hedge_start = now + hedge_delay;
      obs::TraceContext hedge_ctx = ctx;
      hedge_ctx.virtual_start_ns = ctx.virtual_start_ns + hedge_start;
      hedge = node->Serve(predicates, need_sum, measure_qi,
                          deadline - hedge_start, rng, &hedge_ctx);
      hedge_finish = hedge_start + hedge.service_ns;
      hedge_ok = hedge.status.ok() && !hedge.late;
      if (hedge.late) {
        registry.GetCounter("dist.deadline_propagated")->Increment();
      }
    }

    // Earliest successful completion wins; a hedge can rescue a failed
    // primary outright.
    if (primary_ok || hedge_ok) {
      const bool hedge_wins =
          hedge_ok && (!primary_ok || hedge_finish < primary_finish);
      if (hedge_launched) {
        LogFlight(obs::FlightEventType::kHedge, obs::ReasonCode::kOk,
                  ctx.virtual_start_ns + hedge_start, ctx.trace_id, epoch,
                  node_id, hedge_wins ? 1 : 0);
      }
      DistNode::ServeResult* winner = hedge_wins ? &hedge : &primary;
      if (hedge_wins) ++stats->hedge_wins;
      out.reason = obs::ReasonCode::kOk;
      out.finish_ns = hedge_wins ? hedge_finish : primary_finish;
      out.rows = winner->rows;
      out.partials = std::move(winner->partials);
      latency_.Record(winner->service_ns);
      return out;
    }
    if (hedge_launched) {
      LogFlight(obs::FlightEventType::kHedge, obs::ReasonCode::kNone,
                ctx.virtual_start_ns + hedge_start, ctx.trace_id, epoch,
                node_id, 0);
    }

    // Both lost. Classify off the primary: a late response means the
    // deadline itself is spent; a permanent error cannot be retried away.
    if (primary.status.ok() && primary.late) {
      out.reason = obs::ReasonCode::kLateResponse;
      out.finish_ns = deadline;
      return out;
    }
    if (!primary.status.IsTransient()) {
      out.reason = primary.status.code() == StatusCode::kFailedPrecondition
                       ? obs::ReasonCode::kInactiveNode
                       : obs::ReasonCode::kPermanentError;
      out.finish_ns = std::min(primary_finish, deadline);
      return out;
    }
    if (attempt + 1 >= max_attempts) {
      out.reason = obs::ReasonCode::kRetriesExhausted;
      out.finish_ns = std::min(primary_finish, deadline);
      return out;
    }
    ++stats->retries;
    LogFlight(obs::FlightEventType::kRetry, obs::ReasonCode::kTransientError,
              ctx.virtual_start_ns + primary_finish, ctx.trace_id, epoch,
              node_id, attempt);
    const uint64_t backoff_ns =
        static_cast<uint64_t>(RetryBackoff(options_.retry, attempt, rng)
                                  .count()) *
        1000;
    now = primary_finish + backoff_ns;
  }
}

StatusOr<PartialEstimate> ScatterGatherEstimator::Estimate(
    const AggregateQuery& query) {
  if (query.kind == AggregateKind::kAvg) {
    return Status::InvalidArgument(
        "AVG does not decompose into mergeable partial aggregates; issue "
        "SUM and COUNT separately");
  }
  const bool need_sum = query.kind == AggregateKind::kSum;
  if (need_sum && query.measure_qi >= cluster_->qi_defs().size()) {
    return Status::InvalidArgument("measure QI index out of range");
  }
  Rng rng = Rng::ForStream(options_.seed, query_index_++);
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("dist.queries")->Increment();

  // Causal identity. The trace id is allocated even when tracing is off:
  // flight-recorder events still need to correlate with the estimate (and
  // with each other) in the chaos harness.
  obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
  const bool tracing = tracer.enabled();
  const uint64_t trace_id = obs::TraceRecorder::NewId();
  const uint64_t root_span = tracing ? obs::TraceRecorder::NewId() : 0;
  last_trace_id_ = trace_id;
  const uint64_t qstart = virtual_now_;
  const uint64_t epoch = cluster_->epoch();

  PartialEstimate est;
  est.trace_id = trace_id;
  est.total_rows = cluster_->total_rows();
  est.reasons.assign(cluster_->num_nodes(), obs::ReasonCode::kNoShard);

  // Fan out in node order — ascending global group ids, the canonical merge
  // order. The fan-out is parallel in wall-clock terms: virtual_ns is the
  // slowest node's completion, not the sum.
  std::vector<AnatomyQueryEngine::GroupAggregatePartial> merged;
  size_t shard_nodes = 0;
  size_t responded = 0;
  for (size_t i = 0; i < cluster_->num_nodes(); ++i) {
    if (cluster_->record().nodes[i].root == kInvalidPageId) continue;
    ++shard_nodes;
    obs::TraceContext ctx;
    ctx.trace_id = trace_id;
    ctx.parent_span = root_span;
    ctx.virtual_start_ns = qstart;
    ctx.lane = static_cast<uint32_t>(i) + 1;  // lane 0 is the coordinator
    ctx.recording = tracing;
    NodeAttempt attempt = QueryNode(i, query.predicates, need_sum,
                                    query.measure_qi, rng, &est, ctx);
    est.reasons[i] = attempt.reason;
    est.virtual_ns = std::max(est.virtual_ns, attempt.finish_ns);
    switch (obs::ClassOf(attempt.reason)) {
      case obs::ReasonClass::kOkClass:
        ++responded;
        est.covered_rows += attempt.rows;
        merged.insert(merged.end(), attempt.partials.begin(),
                      attempt.partials.end());
        break;
      case obs::ReasonClass::kTimeoutClass:
        registry.GetCounter("dist.node_timeout")->Increment();
        LogFlight(obs::FlightEventType::kQueryDegraded, attempt.reason,
                  qstart + attempt.finish_ns, trace_id, epoch,
                  static_cast<int32_t>(i), 0);
        break;
      case obs::ReasonClass::kUnavailableClass:
        registry.GetCounter("dist.node_unavailable")->Increment();
        LogFlight(obs::FlightEventType::kQueryDegraded, attempt.reason,
                  qstart + attempt.finish_ns, trace_id, epoch,
                  static_cast<int32_t>(i), 0);
        break;
    }
  }
  registry.GetCounter("dist.hedges")->Increment(est.hedges);
  registry.GetCounter("dist.hedge_wins")->Increment(est.hedge_wins);
  registry.GetCounter("dist.retries")->Increment(est.retries);
  registry.GetHistogram("dist.query_ns")->Record(est.virtual_ns);

  // Root span on the coordinator lane, covering the whole virtual fan-out;
  // emitted on every path so merged exports always show the query. Also
  // advances the estimator's virtual clock so back-to-back queries tile the
  // merged timeline instead of overlapping at t=0.
  auto finish_query = [&]() {
    if (tracing) {
      obs::TraceEvent ev;
      ev.name = "dist.query";
      ev.category = "dist";
      ev.start_ns = qstart;
      ev.dur_ns = est.virtual_ns;
      ev.trace_id = trace_id;
      ev.span_id = root_span;
      ev.parent_id = 0;
      ev.lane = 0;
      ev.virtual_time = true;
      ev.AddArg("nodes", static_cast<int64_t>(shard_nodes));
      ev.AddArg("responded", static_cast<int64_t>(responded));
      ev.AddArg("hedges", static_cast<int64_t>(est.hedges));
      ev.AddArg("retries", static_cast<int64_t>(est.retries));
      tracer.RecordEvent(ev);
    }
    virtual_now_ += est.virtual_ns + 1;
  };

  if (shard_nodes == 0) {
    LogFlight(obs::FlightEventType::kQueryUnavailable,
              obs::ReasonCode::kNoPublication, qstart, trace_id, epoch, -1, 0);
    finish_query();
    obs::FlightRecorder::Global().MaybeDumpOnError(
        "query: current epoch has no publication");
    return Status::FailedPrecondition("current epoch has no publication");
  }
  if (responded == 0) {
    registry.GetCounter("dist.degraded")->Increment();
    LogFlight(obs::FlightEventType::kQueryUnavailable,
              obs::ReasonCode::kAllNodesLost, qstart + est.virtual_ns, trace_id,
              epoch, -1, static_cast<int64_t>(shard_nodes));
    finish_query();
    obs::FlightRecorder::Global().MaybeDumpOnError("query: all nodes lost");
    return Status::Unavailable(
        "no node answered within the deadline (" +
        std::to_string(shard_nodes) + " queried)");
  }

  const CanonicalFoldResult fold = CanonicalFold(merged);
  est.value = need_sum ? fold.sum : fold.count;
  est.exact = responded == shard_nodes;
  if (est.exact) {
    est.covered_mass = 1.0;
    est.lower = est.value;
    est.upper = est.value;
    registry.GetCounter("dist.exact")->Increment();
    finish_query();
    return est;
  }

  // Partial: label the answer with its coverage and hard-bound what the
  // missing rows could have contributed. Each missing row adds at most 1 to
  // a COUNT (its group term is mass/|g| * match <= match) and at most the
  // measure attribute's largest absolute value to a SUM — both derivable
  // from the epoch record and the schema alone.
  registry.GetCounter("dist.degraded")->Increment();
  est.covered_mass = est.total_rows == 0
                         ? 0.0
                         : static_cast<double>(est.covered_rows) /
                               static_cast<double>(est.total_rows);
  const double missing =
      static_cast<double>(est.total_rows - est.covered_rows);
  if (!need_sum) {
    est.lower = est.value;
    est.upper = est.value + missing;
  } else {
    const AttributeDef& measure = cluster_->qi_defs()[query.measure_qi];
    const double lo = static_cast<double>(measure.numeric_base);
    const double hi = static_cast<double>(
        measure.numeric_base +
        static_cast<int64_t>(measure.domain_size - 1) * measure.numeric_step);
    const double max_abs = std::max(std::abs(lo), std::abs(hi));
    est.lower = est.value - missing * max_abs;
    est.upper = est.value + missing * max_abs;
  }
  finish_query();
  return est;
}

}  // namespace anatomy
