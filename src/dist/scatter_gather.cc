#include "dist/scatter_gather.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace anatomy {

CanonicalFoldResult CanonicalFold(
    std::span<const AnatomyQueryEngine::GroupAggregatePartial> partials) {
  CanonicalFoldResult r;
  for (const auto& p : partials) {
    // Same schedule as the group-clustered kernels: mass * (1/|g|), then one
    // accumulator per aggregate in ascending global group order.
    const double w =
        static_cast<double>(p.mass) * (1.0 / static_cast<double>(p.size));
    r.count += w * static_cast<double>(p.match);
    r.sum += w * p.value_sum;
  }
  return r;
}

ScatterGatherEstimator::ScatterGatherEstimator(DistCluster* cluster,
                                               const DistQueryOptions& options)
    : cluster_(cluster),
      options_(options),
      latency_(std::max<size_t>(options.hedge_quantile_window, 1)) {
  // The retry schedule always jitters: synchronized retries from a fan-out
  // are exactly the thundering herd full jitter exists to break up.
  options_.retry.full_jitter = true;
}

uint64_t ScatterGatherEstimator::CurrentHedgeDelayNs() {
  // Before enough samples exist to trust a tail quantile, hedge at a fixed
  // fraction of the deadline rather than not at all.
  const uint64_t delay =
      latency_.count() >= 16 ? latency_.Quantile(options_.hedge_quantile)
                             : options_.deadline_ns / 4;
  return std::max(delay, options_.min_hedge_delay_ns);
}

ScatterGatherEstimator::NodeAttempt ScatterGatherEstimator::QueryNode(
    size_t i, const CountQuery& predicates, bool need_sum, size_t measure_qi,
    Rng& rng, PartialEstimate* stats) {
  NodeAttempt out;
  DistNode* node = cluster_->node(i);
  const uint64_t deadline = options_.deadline_ns;
  const uint64_t hedge_delay = CurrentHedgeDelayNs();
  const int max_attempts =
      options_.retry.max_attempts > 0 ? options_.retry.max_attempts : 1;
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();

  uint64_t now = 0;
  bool hedged = false;
  for (int attempt = 0;; ++attempt) {
    if (now >= deadline) {
      out.outcome = NodeQueryOutcome::kTimeout;
      out.finish_ns = deadline;
      return out;
    }
    DistNode::ServeResult primary =
        node->Serve(predicates, need_sum, measure_qi, deadline - now, rng);
    const uint64_t primary_finish = now + primary.service_ns;
    const bool primary_ok = primary.status.ok() && !primary.late;
    if (primary.late) registry.GetCounter("dist.deadline_propagated")->Increment();

    // Hedge: a duplicate launched hedge_delay after the primary, if the
    // primary is still outstanding by then. At most one per node per query.
    DistNode::ServeResult hedge;
    uint64_t hedge_finish = 0;
    bool hedge_ok = false;
    if (options_.hedging && !hedged && primary.service_ns > hedge_delay &&
        now + hedge_delay < deadline) {
      hedged = true;
      ++stats->hedges;
      const uint64_t hedge_start = now + hedge_delay;
      hedge = node->Serve(predicates, need_sum, measure_qi,
                          deadline - hedge_start, rng);
      hedge_finish = hedge_start + hedge.service_ns;
      hedge_ok = hedge.status.ok() && !hedge.late;
      if (hedge.late) {
        registry.GetCounter("dist.deadline_propagated")->Increment();
      }
    }

    // Earliest successful completion wins; a hedge can rescue a failed
    // primary outright.
    if (primary_ok || hedge_ok) {
      const bool hedge_wins =
          hedge_ok && (!primary_ok || hedge_finish < primary_finish);
      DistNode::ServeResult* winner = hedge_wins ? &hedge : &primary;
      if (hedge_wins) ++stats->hedge_wins;
      out.outcome = NodeQueryOutcome::kOk;
      out.finish_ns = hedge_wins ? hedge_finish : primary_finish;
      out.rows = winner->rows;
      out.partials = std::move(winner->partials);
      latency_.Record(winner->service_ns);
      return out;
    }

    // Both lost. Classify off the primary: a late response means the
    // deadline itself is spent; a permanent error cannot be retried away.
    if (primary.status.ok() && primary.late) {
      out.outcome = NodeQueryOutcome::kTimeout;
      out.finish_ns = deadline;
      return out;
    }
    if (!primary.status.IsTransient()) {
      out.outcome = NodeQueryOutcome::kUnavailable;
      out.finish_ns = std::min(primary_finish, deadline);
      return out;
    }
    if (attempt + 1 >= max_attempts) {
      out.outcome = NodeQueryOutcome::kTimeout;
      out.finish_ns = std::min(primary_finish, deadline);
      return out;
    }
    ++stats->retries;
    const uint64_t backoff_ns =
        static_cast<uint64_t>(RetryBackoff(options_.retry, attempt, rng)
                                  .count()) *
        1000;
    now = primary_finish + backoff_ns;
  }
}

StatusOr<PartialEstimate> ScatterGatherEstimator::Estimate(
    const AggregateQuery& query) {
  if (query.kind == AggregateKind::kAvg) {
    return Status::InvalidArgument(
        "AVG does not decompose into mergeable partial aggregates; issue "
        "SUM and COUNT separately");
  }
  const bool need_sum = query.kind == AggregateKind::kSum;
  if (need_sum && query.measure_qi >= cluster_->qi_defs().size()) {
    return Status::InvalidArgument("measure QI index out of range");
  }
  Rng rng = Rng::ForStream(options_.seed, query_index_++);
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("dist.queries")->Increment();

  PartialEstimate est;
  est.total_rows = cluster_->total_rows();
  est.outcomes.assign(cluster_->num_nodes(), NodeQueryOutcome::kNoShard);

  // Fan out in node order — ascending global group ids, the canonical merge
  // order. The fan-out is parallel in wall-clock terms: virtual_ns is the
  // slowest node's completion, not the sum.
  std::vector<AnatomyQueryEngine::GroupAggregatePartial> merged;
  size_t shard_nodes = 0;
  size_t responded = 0;
  for (size_t i = 0; i < cluster_->num_nodes(); ++i) {
    if (cluster_->record().nodes[i].root == kInvalidPageId) continue;
    ++shard_nodes;
    NodeAttempt attempt =
        QueryNode(i, query.predicates, need_sum, query.measure_qi, rng, &est);
    est.outcomes[i] = attempt.outcome;
    est.virtual_ns = std::max(est.virtual_ns, attempt.finish_ns);
    switch (attempt.outcome) {
      case NodeQueryOutcome::kOk:
        ++responded;
        est.covered_rows += attempt.rows;
        merged.insert(merged.end(), attempt.partials.begin(),
                      attempt.partials.end());
        break;
      case NodeQueryOutcome::kTimeout:
        registry.GetCounter("dist.node_timeout")->Increment();
        break;
      case NodeQueryOutcome::kUnavailable:
        registry.GetCounter("dist.node_unavailable")->Increment();
        break;
      case NodeQueryOutcome::kNoShard:
        break;
    }
  }
  registry.GetCounter("dist.hedges")->Increment(est.hedges);
  registry.GetCounter("dist.hedge_wins")->Increment(est.hedge_wins);
  registry.GetCounter("dist.retries")->Increment(est.retries);
  registry.GetHistogram("dist.query_ns")->Record(est.virtual_ns);

  if (shard_nodes == 0) {
    return Status::FailedPrecondition("current epoch has no publication");
  }
  if (responded == 0) {
    registry.GetCounter("dist.degraded")->Increment();
    return Status::Unavailable(
        "no node answered within the deadline (" +
        std::to_string(shard_nodes) + " queried)");
  }

  const CanonicalFoldResult fold = CanonicalFold(merged);
  est.value = need_sum ? fold.sum : fold.count;
  est.exact = responded == shard_nodes;
  if (est.exact) {
    est.covered_mass = 1.0;
    est.lower = est.value;
    est.upper = est.value;
    registry.GetCounter("dist.exact")->Increment();
    return est;
  }

  // Partial: label the answer with its coverage and hard-bound what the
  // missing rows could have contributed. Each missing row adds at most 1 to
  // a COUNT (its group term is mass/|g| * match <= match) and at most the
  // measure attribute's largest absolute value to a SUM — both derivable
  // from the epoch record and the schema alone.
  registry.GetCounter("dist.degraded")->Increment();
  est.covered_mass = est.total_rows == 0
                         ? 0.0
                         : static_cast<double>(est.covered_rows) /
                               static_cast<double>(est.total_rows);
  const double missing =
      static_cast<double>(est.total_rows - est.covered_rows);
  if (!need_sum) {
    est.lower = est.value;
    est.upper = est.value + missing;
  } else {
    const AttributeDef& measure = cluster_->qi_defs()[query.measure_qi];
    const double lo = static_cast<double>(measure.numeric_base);
    const double hi = static_cast<double>(
        measure.numeric_base +
        static_cast<int64_t>(measure.domain_size - 1) * measure.numeric_step);
    const double max_abs = std::max(std::abs(lo), std::abs(hi));
    est.lower = est.value - missing * max_abs;
    est.upper = est.value + missing * max_abs;
  }
  return est;
}

}  // namespace anatomy
