# Empty compiler generated dependencies file for bench_fig6_error_vs_s.
# This may be replaced when dependencies are built.
