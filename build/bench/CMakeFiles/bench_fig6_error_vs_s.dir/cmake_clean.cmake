file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_error_vs_s.dir/bench_fig6_error_vs_s.cc.o"
  "CMakeFiles/bench_fig6_error_vs_s.dir/bench_fig6_error_vs_s.cc.o.d"
  "bench_fig6_error_vs_s"
  "bench_fig6_error_vs_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_error_vs_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
