# Empty compiler generated dependencies file for bench_fig4_error_vs_d.
# This may be replaced when dependencies are built.
