file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_error_vs_d.dir/bench_fig4_error_vs_d.cc.o"
  "CMakeFiles/bench_fig4_error_vs_d.dir/bench_fig4_error_vs_d.cc.o.d"
  "bench_fig4_error_vs_d"
  "bench_fig4_error_vs_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_error_vs_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
