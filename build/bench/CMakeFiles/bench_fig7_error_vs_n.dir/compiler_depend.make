# Empty compiler generated dependencies file for bench_fig7_error_vs_n.
# This may be replaced when dependencies are built.
