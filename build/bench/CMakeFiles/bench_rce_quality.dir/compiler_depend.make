# Empty compiler generated dependencies file for bench_rce_quality.
# This may be replaced when dependencies are built.
