file(REMOVE_RECURSE
  "CMakeFiles/bench_rce_quality.dir/bench_rce_quality.cc.o"
  "CMakeFiles/bench_rce_quality.dir/bench_rce_quality.cc.o.d"
  "bench_rce_quality"
  "bench_rce_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rce_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
