# Empty dependencies file for bench_fig8_io_vs_d.
# This may be replaced when dependencies are built.
