file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_io_vs_n.dir/bench_fig9_io_vs_n.cc.o"
  "CMakeFiles/bench_fig9_io_vs_n.dir/bench_fig9_io_vs_n.cc.o.d"
  "bench_fig9_io_vs_n"
  "bench_fig9_io_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_io_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
