# Empty compiler generated dependencies file for bench_fig9_io_vs_n.
# This may be replaced when dependencies are built.
