file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_error_vs_qd.dir/bench_fig5_error_vs_qd.cc.o"
  "CMakeFiles/bench_fig5_error_vs_qd.dir/bench_fig5_error_vs_qd.cc.o.d"
  "bench_fig5_error_vs_qd"
  "bench_fig5_error_vs_qd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_error_vs_qd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
