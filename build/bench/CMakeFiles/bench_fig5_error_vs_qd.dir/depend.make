# Empty dependencies file for bench_fig5_error_vs_qd.
# This may be replaced when dependencies are built.
