file(REMOVE_RECURSE
  "libanatomy_bench_util.a"
)
