# Empty dependencies file for anatomy_bench_util.
# This may be replaced when dependencies are built.
