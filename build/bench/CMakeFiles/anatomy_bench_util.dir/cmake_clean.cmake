file(REMOVE_RECURSE
  "CMakeFiles/anatomy_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/anatomy_bench_util.dir/bench_util.cc.o.d"
  "libanatomy_bench_util.a"
  "libanatomy_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
