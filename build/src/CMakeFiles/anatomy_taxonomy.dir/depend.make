# Empty dependencies file for anatomy_taxonomy.
# This may be replaced when dependencies are built.
