file(REMOVE_RECURSE
  "libanatomy_taxonomy.a"
)
