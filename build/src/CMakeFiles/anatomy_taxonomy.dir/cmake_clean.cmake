file(REMOVE_RECURSE
  "CMakeFiles/anatomy_taxonomy.dir/taxonomy/taxonomy.cc.o"
  "CMakeFiles/anatomy_taxonomy.dir/taxonomy/taxonomy.cc.o.d"
  "libanatomy_taxonomy.a"
  "libanatomy_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
