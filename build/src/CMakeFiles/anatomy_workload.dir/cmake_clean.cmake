file(REMOVE_RECURSE
  "CMakeFiles/anatomy_workload.dir/workload/runner.cc.o"
  "CMakeFiles/anatomy_workload.dir/workload/runner.cc.o.d"
  "CMakeFiles/anatomy_workload.dir/workload/workload.cc.o"
  "CMakeFiles/anatomy_workload.dir/workload/workload.cc.o.d"
  "libanatomy_workload.a"
  "libanatomy_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
