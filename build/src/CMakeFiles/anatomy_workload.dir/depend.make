# Empty dependencies file for anatomy_workload.
# This may be replaced when dependencies are built.
