file(REMOVE_RECURSE
  "libanatomy_workload.a"
)
