# Empty dependencies file for anatomy_query.
# This may be replaced when dependencies are built.
