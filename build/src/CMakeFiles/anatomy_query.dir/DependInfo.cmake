
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/anatomy_query.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/anatomy_estimator.cc" "src/CMakeFiles/anatomy_query.dir/query/anatomy_estimator.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/anatomy_estimator.cc.o.d"
  "/root/repo/src/query/bitmap.cc" "src/CMakeFiles/anatomy_query.dir/query/bitmap.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/bitmap.cc.o.d"
  "/root/repo/src/query/bitmap_index.cc" "src/CMakeFiles/anatomy_query.dir/query/bitmap_index.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/bitmap_index.cc.o.d"
  "/root/repo/src/query/exact_evaluator.cc" "src/CMakeFiles/anatomy_query.dir/query/exact_evaluator.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/exact_evaluator.cc.o.d"
  "/root/repo/src/query/generalization_estimator.cc" "src/CMakeFiles/anatomy_query.dir/query/generalization_estimator.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/generalization_estimator.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/anatomy_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/anatomy_query.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/anatomy_query.dir/query/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anatomy_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_generalization.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
