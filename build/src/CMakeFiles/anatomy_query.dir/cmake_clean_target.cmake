file(REMOVE_RECURSE
  "libanatomy_query.a"
)
