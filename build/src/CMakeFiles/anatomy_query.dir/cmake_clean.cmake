file(REMOVE_RECURSE
  "CMakeFiles/anatomy_query.dir/query/aggregate.cc.o"
  "CMakeFiles/anatomy_query.dir/query/aggregate.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/anatomy_estimator.cc.o"
  "CMakeFiles/anatomy_query.dir/query/anatomy_estimator.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/bitmap.cc.o"
  "CMakeFiles/anatomy_query.dir/query/bitmap.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/bitmap_index.cc.o"
  "CMakeFiles/anatomy_query.dir/query/bitmap_index.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/exact_evaluator.cc.o"
  "CMakeFiles/anatomy_query.dir/query/exact_evaluator.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/generalization_estimator.cc.o"
  "CMakeFiles/anatomy_query.dir/query/generalization_estimator.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/parser.cc.o"
  "CMakeFiles/anatomy_query.dir/query/parser.cc.o.d"
  "CMakeFiles/anatomy_query.dir/query/predicate.cc.o"
  "CMakeFiles/anatomy_query.dir/query/predicate.cc.o.d"
  "libanatomy_query.a"
  "libanatomy_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
