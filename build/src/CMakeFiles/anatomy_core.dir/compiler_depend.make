# Empty compiler generated dependencies file for anatomy_core.
# This may be replaced when dependencies are built.
