file(REMOVE_RECURSE
  "libanatomy_core.a"
)
