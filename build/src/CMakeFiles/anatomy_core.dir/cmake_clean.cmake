file(REMOVE_RECURSE
  "CMakeFiles/anatomy_core.dir/anatomy/anatomized_tables.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/anatomized_tables.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/anatomizer.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/anatomizer.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/bundle.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/bundle.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/eligibility.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/eligibility.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/external_anatomizer.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/external_anatomizer.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/external_join.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/external_join.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/join.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/join.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/multi_sensitive.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/multi_sensitive.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/partition.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/partition.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/rce.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/rce.cc.o.d"
  "CMakeFiles/anatomy_core.dir/anatomy/streaming.cc.o"
  "CMakeFiles/anatomy_core.dir/anatomy/streaming.cc.o.d"
  "libanatomy_core.a"
  "libanatomy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
