
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anatomy/anatomized_tables.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/anatomized_tables.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/anatomized_tables.cc.o.d"
  "/root/repo/src/anatomy/anatomizer.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/anatomizer.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/anatomizer.cc.o.d"
  "/root/repo/src/anatomy/bundle.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/bundle.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/bundle.cc.o.d"
  "/root/repo/src/anatomy/eligibility.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/eligibility.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/eligibility.cc.o.d"
  "/root/repo/src/anatomy/external_anatomizer.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/external_anatomizer.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/external_anatomizer.cc.o.d"
  "/root/repo/src/anatomy/external_join.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/external_join.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/external_join.cc.o.d"
  "/root/repo/src/anatomy/join.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/join.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/join.cc.o.d"
  "/root/repo/src/anatomy/multi_sensitive.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/multi_sensitive.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/multi_sensitive.cc.o.d"
  "/root/repo/src/anatomy/partition.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/partition.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/partition.cc.o.d"
  "/root/repo/src/anatomy/rce.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/rce.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/rce.cc.o.d"
  "/root/repo/src/anatomy/streaming.cc" "src/CMakeFiles/anatomy_core.dir/anatomy/streaming.cc.o" "gcc" "src/CMakeFiles/anatomy_core.dir/anatomy/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anatomy_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
