file(REMOVE_RECURSE
  "CMakeFiles/anatomy_privacy.dir/privacy/breach.cc.o"
  "CMakeFiles/anatomy_privacy.dir/privacy/breach.cc.o.d"
  "CMakeFiles/anatomy_privacy.dir/privacy/ldiversity.cc.o"
  "CMakeFiles/anatomy_privacy.dir/privacy/ldiversity.cc.o.d"
  "CMakeFiles/anatomy_privacy.dir/privacy/voter_attack.cc.o"
  "CMakeFiles/anatomy_privacy.dir/privacy/voter_attack.cc.o.d"
  "libanatomy_privacy.a"
  "libanatomy_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
