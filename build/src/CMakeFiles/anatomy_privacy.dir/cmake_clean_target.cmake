file(REMOVE_RECURSE
  "libanatomy_privacy.a"
)
