# Empty compiler generated dependencies file for anatomy_privacy.
# This may be replaced when dependencies are built.
