file(REMOVE_RECURSE
  "CMakeFiles/anatomy_table.dir/table/csv.cc.o"
  "CMakeFiles/anatomy_table.dir/table/csv.cc.o.d"
  "CMakeFiles/anatomy_table.dir/table/schema.cc.o"
  "CMakeFiles/anatomy_table.dir/table/schema.cc.o.d"
  "CMakeFiles/anatomy_table.dir/table/schema_io.cc.o"
  "CMakeFiles/anatomy_table.dir/table/schema_io.cc.o.d"
  "CMakeFiles/anatomy_table.dir/table/stats.cc.o"
  "CMakeFiles/anatomy_table.dir/table/stats.cc.o.d"
  "CMakeFiles/anatomy_table.dir/table/table.cc.o"
  "CMakeFiles/anatomy_table.dir/table/table.cc.o.d"
  "libanatomy_table.a"
  "libanatomy_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
