# Empty compiler generated dependencies file for anatomy_table.
# This may be replaced when dependencies are built.
