
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/csv.cc" "src/CMakeFiles/anatomy_table.dir/table/csv.cc.o" "gcc" "src/CMakeFiles/anatomy_table.dir/table/csv.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/anatomy_table.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/anatomy_table.dir/table/schema.cc.o.d"
  "/root/repo/src/table/schema_io.cc" "src/CMakeFiles/anatomy_table.dir/table/schema_io.cc.o" "gcc" "src/CMakeFiles/anatomy_table.dir/table/schema_io.cc.o.d"
  "/root/repo/src/table/stats.cc" "src/CMakeFiles/anatomy_table.dir/table/stats.cc.o" "gcc" "src/CMakeFiles/anatomy_table.dir/table/stats.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/anatomy_table.dir/table/table.cc.o" "gcc" "src/CMakeFiles/anatomy_table.dir/table/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anatomy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
