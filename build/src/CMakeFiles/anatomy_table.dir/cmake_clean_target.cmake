file(REMOVE_RECURSE
  "libanatomy_table.a"
)
