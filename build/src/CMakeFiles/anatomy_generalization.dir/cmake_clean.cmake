file(REMOVE_RECURSE
  "CMakeFiles/anatomy_generalization.dir/generalization/external_mondrian.cc.o"
  "CMakeFiles/anatomy_generalization.dir/generalization/external_mondrian.cc.o.d"
  "CMakeFiles/anatomy_generalization.dir/generalization/full_domain.cc.o"
  "CMakeFiles/anatomy_generalization.dir/generalization/full_domain.cc.o.d"
  "CMakeFiles/anatomy_generalization.dir/generalization/generalized_io.cc.o"
  "CMakeFiles/anatomy_generalization.dir/generalization/generalized_io.cc.o.d"
  "CMakeFiles/anatomy_generalization.dir/generalization/generalized_table.cc.o"
  "CMakeFiles/anatomy_generalization.dir/generalization/generalized_table.cc.o.d"
  "CMakeFiles/anatomy_generalization.dir/generalization/info_loss.cc.o"
  "CMakeFiles/anatomy_generalization.dir/generalization/info_loss.cc.o.d"
  "CMakeFiles/anatomy_generalization.dir/generalization/mondrian.cc.o"
  "CMakeFiles/anatomy_generalization.dir/generalization/mondrian.cc.o.d"
  "libanatomy_generalization.a"
  "libanatomy_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
