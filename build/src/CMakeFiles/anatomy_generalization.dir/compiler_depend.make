# Empty compiler generated dependencies file for anatomy_generalization.
# This may be replaced when dependencies are built.
