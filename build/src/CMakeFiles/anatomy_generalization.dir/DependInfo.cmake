
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generalization/external_mondrian.cc" "src/CMakeFiles/anatomy_generalization.dir/generalization/external_mondrian.cc.o" "gcc" "src/CMakeFiles/anatomy_generalization.dir/generalization/external_mondrian.cc.o.d"
  "/root/repo/src/generalization/full_domain.cc" "src/CMakeFiles/anatomy_generalization.dir/generalization/full_domain.cc.o" "gcc" "src/CMakeFiles/anatomy_generalization.dir/generalization/full_domain.cc.o.d"
  "/root/repo/src/generalization/generalized_io.cc" "src/CMakeFiles/anatomy_generalization.dir/generalization/generalized_io.cc.o" "gcc" "src/CMakeFiles/anatomy_generalization.dir/generalization/generalized_io.cc.o.d"
  "/root/repo/src/generalization/generalized_table.cc" "src/CMakeFiles/anatomy_generalization.dir/generalization/generalized_table.cc.o" "gcc" "src/CMakeFiles/anatomy_generalization.dir/generalization/generalized_table.cc.o.d"
  "/root/repo/src/generalization/info_loss.cc" "src/CMakeFiles/anatomy_generalization.dir/generalization/info_loss.cc.o" "gcc" "src/CMakeFiles/anatomy_generalization.dir/generalization/info_loss.cc.o.d"
  "/root/repo/src/generalization/mondrian.cc" "src/CMakeFiles/anatomy_generalization.dir/generalization/mondrian.cc.o" "gcc" "src/CMakeFiles/anatomy_generalization.dir/generalization/mondrian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anatomy_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
