file(REMOVE_RECURSE
  "libanatomy_generalization.a"
)
