file(REMOVE_RECURSE
  "CMakeFiles/anatomy_data.dir/data/census.cc.o"
  "CMakeFiles/anatomy_data.dir/data/census.cc.o.d"
  "CMakeFiles/anatomy_data.dir/data/census_generator.cc.o"
  "CMakeFiles/anatomy_data.dir/data/census_generator.cc.o.d"
  "CMakeFiles/anatomy_data.dir/data/dataset.cc.o"
  "CMakeFiles/anatomy_data.dir/data/dataset.cc.o.d"
  "libanatomy_data.a"
  "libanatomy_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
