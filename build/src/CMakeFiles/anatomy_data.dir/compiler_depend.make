# Empty compiler generated dependencies file for anatomy_data.
# This may be replaced when dependencies are built.
