file(REMOVE_RECURSE
  "libanatomy_data.a"
)
