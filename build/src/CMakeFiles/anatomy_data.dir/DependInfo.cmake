
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/census.cc" "src/CMakeFiles/anatomy_data.dir/data/census.cc.o" "gcc" "src/CMakeFiles/anatomy_data.dir/data/census.cc.o.d"
  "/root/repo/src/data/census_generator.cc" "src/CMakeFiles/anatomy_data.dir/data/census_generator.cc.o" "gcc" "src/CMakeFiles/anatomy_data.dir/data/census_generator.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/anatomy_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/anatomy_data.dir/data/dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anatomy_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
