file(REMOVE_RECURSE
  "CMakeFiles/anatomy_common.dir/common/flags.cc.o"
  "CMakeFiles/anatomy_common.dir/common/flags.cc.o.d"
  "CMakeFiles/anatomy_common.dir/common/printer.cc.o"
  "CMakeFiles/anatomy_common.dir/common/printer.cc.o.d"
  "CMakeFiles/anatomy_common.dir/common/rng.cc.o"
  "CMakeFiles/anatomy_common.dir/common/rng.cc.o.d"
  "CMakeFiles/anatomy_common.dir/common/status.cc.o"
  "CMakeFiles/anatomy_common.dir/common/status.cc.o.d"
  "CMakeFiles/anatomy_common.dir/common/string_util.cc.o"
  "CMakeFiles/anatomy_common.dir/common/string_util.cc.o.d"
  "libanatomy_common.a"
  "libanatomy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
