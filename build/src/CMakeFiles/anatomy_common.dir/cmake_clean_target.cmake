file(REMOVE_RECURSE
  "libanatomy_common.a"
)
