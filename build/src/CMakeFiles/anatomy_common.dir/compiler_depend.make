# Empty compiler generated dependencies file for anatomy_common.
# This may be replaced when dependencies are built.
