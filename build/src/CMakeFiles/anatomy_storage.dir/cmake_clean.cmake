file(REMOVE_RECURSE
  "CMakeFiles/anatomy_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/anatomy_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/anatomy_storage.dir/storage/external_sort.cc.o"
  "CMakeFiles/anatomy_storage.dir/storage/external_sort.cc.o.d"
  "CMakeFiles/anatomy_storage.dir/storage/page_file.cc.o"
  "CMakeFiles/anatomy_storage.dir/storage/page_file.cc.o.d"
  "CMakeFiles/anatomy_storage.dir/storage/simulated_disk.cc.o"
  "CMakeFiles/anatomy_storage.dir/storage/simulated_disk.cc.o.d"
  "libanatomy_storage.a"
  "libanatomy_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
