file(REMOVE_RECURSE
  "libanatomy_storage.a"
)
