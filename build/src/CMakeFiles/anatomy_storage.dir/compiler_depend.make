# Empty compiler generated dependencies file for anatomy_storage.
# This may be replaced when dependencies are built.
