file(REMOVE_RECURSE
  "CMakeFiles/anatomized_tables_test.dir/anatomized_tables_test.cc.o"
  "CMakeFiles/anatomized_tables_test.dir/anatomized_tables_test.cc.o.d"
  "anatomized_tables_test"
  "anatomized_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomized_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
