# Empty compiler generated dependencies file for anatomized_tables_test.
# This may be replaced when dependencies are built.
