file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_test.dir/taxonomy_test.cc.o"
  "CMakeFiles/taxonomy_test.dir/taxonomy_test.cc.o.d"
  "taxonomy_test"
  "taxonomy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
