# Empty dependencies file for external_anatomizer_test.
# This may be replaced when dependencies are built.
