file(REMOVE_RECURSE
  "CMakeFiles/external_anatomizer_test.dir/external_anatomizer_test.cc.o"
  "CMakeFiles/external_anatomizer_test.dir/external_anatomizer_test.cc.o.d"
  "external_anatomizer_test"
  "external_anatomizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_anatomizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
