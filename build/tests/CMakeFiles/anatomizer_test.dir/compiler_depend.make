# Empty compiler generated dependencies file for anatomizer_test.
# This may be replaced when dependencies are built.
