file(REMOVE_RECURSE
  "CMakeFiles/anatomizer_test.dir/anatomizer_test.cc.o"
  "CMakeFiles/anatomizer_test.dir/anatomizer_test.cc.o.d"
  "anatomizer_test"
  "anatomizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
