
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anatomizer_test.cc" "tests/CMakeFiles/anatomizer_test.dir/anatomizer_test.cc.o" "gcc" "tests/CMakeFiles/anatomizer_test.dir/anatomizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anatomy_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_generalization.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/anatomy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
