# Empty dependencies file for streaming_test.
# This may be replaced when dependencies are built.
