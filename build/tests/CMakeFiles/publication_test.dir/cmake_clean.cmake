file(REMOVE_RECURSE
  "CMakeFiles/publication_test.dir/publication_test.cc.o"
  "CMakeFiles/publication_test.dir/publication_test.cc.o.d"
  "publication_test"
  "publication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
