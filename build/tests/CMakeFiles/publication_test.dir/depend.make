# Empty dependencies file for publication_test.
# This may be replaced when dependencies are built.
