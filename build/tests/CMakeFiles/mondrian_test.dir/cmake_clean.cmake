file(REMOVE_RECURSE
  "CMakeFiles/mondrian_test.dir/mondrian_test.cc.o"
  "CMakeFiles/mondrian_test.dir/mondrian_test.cc.o.d"
  "mondrian_test"
  "mondrian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mondrian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
