# Empty compiler generated dependencies file for mondrian_test.
# This may be replaced when dependencies are built.
