# Empty compiler generated dependencies file for generalized_io_test.
# This may be replaced when dependencies are built.
