file(REMOVE_RECURSE
  "CMakeFiles/generalized_io_test.dir/generalized_io_test.cc.o"
  "CMakeFiles/generalized_io_test.dir/generalized_io_test.cc.o.d"
  "generalized_io_test"
  "generalized_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
