# Empty dependencies file for full_domain_test.
# This may be replaced when dependencies are built.
