file(REMOVE_RECURSE
  "CMakeFiles/full_domain_test.dir/full_domain_test.cc.o"
  "CMakeFiles/full_domain_test.dir/full_domain_test.cc.o.d"
  "full_domain_test"
  "full_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
