file(REMOVE_RECURSE
  "CMakeFiles/bundle_test.dir/bundle_test.cc.o"
  "CMakeFiles/bundle_test.dir/bundle_test.cc.o.d"
  "bundle_test"
  "bundle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
