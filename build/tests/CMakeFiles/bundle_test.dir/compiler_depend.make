# Empty compiler generated dependencies file for bundle_test.
# This may be replaced when dependencies are built.
