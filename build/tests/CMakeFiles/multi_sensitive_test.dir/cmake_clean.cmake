file(REMOVE_RECURSE
  "CMakeFiles/multi_sensitive_test.dir/multi_sensitive_test.cc.o"
  "CMakeFiles/multi_sensitive_test.dir/multi_sensitive_test.cc.o.d"
  "multi_sensitive_test"
  "multi_sensitive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
