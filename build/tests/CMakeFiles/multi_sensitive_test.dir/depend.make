# Empty dependencies file for multi_sensitive_test.
# This may be replaced when dependencies are built.
