file(REMOVE_RECURSE
  "CMakeFiles/estimator_test.dir/estimator_test.cc.o"
  "CMakeFiles/estimator_test.dir/estimator_test.cc.o.d"
  "estimator_test"
  "estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
