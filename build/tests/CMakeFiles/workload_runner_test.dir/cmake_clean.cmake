file(REMOVE_RECURSE
  "CMakeFiles/workload_runner_test.dir/workload_runner_test.cc.o"
  "CMakeFiles/workload_runner_test.dir/workload_runner_test.cc.o.d"
  "workload_runner_test"
  "workload_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
