# Empty compiler generated dependencies file for workload_runner_test.
# This may be replaced when dependencies are built.
