# Empty compiler generated dependencies file for hospital_publishing.
# This may be replaced when dependencies are built.
