file(REMOVE_RECURSE
  "CMakeFiles/hospital_publishing.dir/hospital_publishing.cpp.o"
  "CMakeFiles/hospital_publishing.dir/hospital_publishing.cpp.o.d"
  "hospital_publishing"
  "hospital_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
