file(REMOVE_RECURSE
  "CMakeFiles/census_analysis.dir/census_analysis.cpp.o"
  "CMakeFiles/census_analysis.dir/census_analysis.cpp.o.d"
  "census_analysis"
  "census_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
