# Empty dependencies file for census_analysis.
# This may be replaced when dependencies are built.
