file(REMOVE_RECURSE
  "CMakeFiles/anatomy_cli.dir/anatomy_cli.cpp.o"
  "CMakeFiles/anatomy_cli.dir/anatomy_cli.cpp.o.d"
  "anatomy_cli"
  "anatomy_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
