# Empty dependencies file for anatomy_cli.
# This may be replaced when dependencies are built.
