#!/usr/bin/env bash
# Configure, build, and run the tier-1 test suite under ThreadSanitizer and
# AddressSanitizer(+UBSan). Part of the tier-1 verify loop (see README.md):
# the multi-threaded estimator hammer tests in parallel_query_test are only
# a real race detector under TSan, and the fault-injection sweep
# (fault_injection_test) only proves its "never abort, never leak" claim when
# every injected-fault error path also runs clean under ASan+UBSan.
#
# Usage:
#   tools/check_sanitizers.sh              # both sanitizers, full suite
#   tools/check_sanitizers.sh tsan         # one sanitizer only
#   tools/check_sanitizers.sh faults       # both sanitizers, fault sweep only
#   tools/check_sanitizers.sh obs          # both sanitizers, obs + query hammer
#   tools/check_sanitizers.sh kernels      # both sanitizers, query kernels + cache
#   tools/check_sanitizers.sh sharded      # both sanitizers, sharded build + streaming
#   tools/check_sanitizers.sh scaling      # both sanitizers, sharded cache + parallel path
#   tools/check_sanitizers.sh chaos        # both sanitizers, dist serving + chaos sweep
#   tools/check_sanitizers.sh slo          # both sanitizers, SLO + flight recorder + tracing
#   tools/check_sanitizers.sh arena        # both sanitizers, memory substrate + its hot users
#   tools/check_sanitizers.sh serve        # both sanitizers, serving layer + swap chaos
#   tools/check_sanitizers.sh tsan -R parallel_query_test
#                                          # extra args passed to ctest
set -euo pipefail

cd "$(dirname "$0")/.."

presets=(tsan asan)
extra=()
if [[ $# -ge 1 ]]; then
  case "$1" in
    tsan|asan)
      presets=("$1")
      shift
      ;;
    faults)
      # The fault sweep drives every retry/abort/reclaim path in the storage
      # layer; running it under both sanitizers is the cheap smoke check.
      extra=(-R fault_injection_test)
      shift
      ;;
    obs)
      # The observability smoke check: obs_test's ThreadPool hammer proves
      # the relaxed-atomic metric mutation and per-thread trace rings are
      # race-free, and parallel_query_test proves instrumented hot paths
      # stay bit-deterministic while many shards record concurrently.
      extra=(-R '^(obs_test|parallel_query_test)$')
      shift
      ;;
    kernels)
      # The query-kernel smoke check: query_kernels_test pins the kernel
      # paths to the scalar reference (and exercises cache eviction), while
      # parallel_query_test's tiny-capacity cache hammer makes concurrent
      # insert/evict/lease races visible to TSan and use-after-evict
      # visible to ASan.
      extra=(-R '^(query_kernels_test|parallel_query_test)$')
      shift
      ;;
    scaling)
      # The de-contended query-path smoke check: query_scaling_test's
      # sharded-cache hammer drives the probe-outside-lock hit path, compute-outside-
      # lock misses, race-lost inserts, and copy-and-publish eviction under
      # TSan (the throughput gate itself self-skips under sanitizers), and
      # parallel_query_test proves the batched evaluation and per-thread
      # histogram shards stay bit-deterministic while contended.
      extra=(-R '^(query_scaling_test|parallel_query_test)$')
      shift
      ;;
    sharded)
      # The shard-parallel build smoke check: sharded_anatomizer_test runs
      # per-shard Anatomizers concurrently on the ThreadPool (the byte-
      # identity-across-thread-counts tests only prove race freedom under
      # TSan), and streaming_test's plan-then-commit Finish / flush-window
      # error paths must leave no leaks or UB behind under ASan+UBSan.
      extra=(-R '^(sharded_anatomizer_test|streaming_test)$')
      shift
      ;;
    chaos)
      # The distributed-serving smoke check: dist_test drives scatter-gather
      # (hedges, retries, honest partials) and every swap kill point, and
      # chaos_test's fault × kill × seed sweep exercises the recovery and
      # orphan-sweep error paths — all of which must run clean under
      # ASan+UBSan, with the shard-parallel publish inside each scenario
      # giving TSan real concurrency to check.
      extra=(-R '^(dist_test|chaos_test)$')
      shift
      ;;
    slo)
      # The observability-pipeline smoke check: slo_test's burn-rate windows
      # read live histogram snapshots, flightrec_test hammers the per-thread
      # flight rings from the ThreadPool, obs_test races trace export
      # against concurrent recording, and chaos_test proves every degraded
      # response is explained by a recorder event while the whole sweep runs
      # under the sanitizer.
      extra=(-R '^(slo_test|flightrec_test|obs_test|chaos_test)$')
      shift
      ;;
    arena)
      # The memory-substrate smoke check: arena_test's 8-thread hammer gives
      # TSan the concurrent alloc/free traffic and its poison-on-free death
      # test only fires under ASan (it self-skips elsewhere);
      # query_kernels_test and sharded_anatomizer_test run the arena-on/off
      # bit-identity sweeps over the migrated hot structures.
      extra=(-R '^(arena_test|query_kernels_test|sharded_anatomizer_test)$')
      shift
      ;;
    serve)
      # The serving-layer smoke check: serve_test covers tenant denials,
      # epoch-swap bit-identity, and the COW swap under open-loop load
      # (the swap's shard-parallel rebuild gives TSan real concurrency),
      # and chaos_test keeps the underlying two-phase swap honest under
      # every kill point while ASan+UBSan watch the recovery error paths.
      extra=(-R '^(serve_test|chaos_test)$')
      shift
      ;;
  esac
fi

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==== [${preset}] configure ===="
  cmake --preset "${preset}"
  echo "==== [${preset}] build ===="
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==== [${preset}] ctest ===="
  ctest --preset "${preset}" -j "${jobs}" "${extra[@]}" "$@"
  echo "==== [${preset}] OK ===="
done

echo "All sanitizer runs passed: ${presets[*]}"
