#!/usr/bin/env python3
"""Structural validator for Chrome traces exported by obs::TraceRecorder.

Checks, over every "X" (complete) event that carries a span-id block:

  * span_id values are unique across the whole trace;
  * every nonzero parent_id refers to a span that exists in the trace and
    belongs to the same trace_id (causal edges never cross traces);
  * nesting: a child on the same pid/tid lane as its parent must be fully
    contained in the parent's [ts, ts+dur] interval; a child on a different
    lane (coordinator fanning out to a node) must start no earlier than its
    parent, but may END after it — the query root ends when the coordinator
    answers, while losing hedges and late node responses legitimately run
    past that point. Note events are ring-ordered by *end* time (RAII spans
    record on End), so children legitimately precede their parents in the
    file; file order is NOT checked.
  * pid/tid hygiene: every pid used by an event has a process_name metadata
    record, and every (pid, tid) has a thread_name record.

Exit status 0 and a one-line summary on success; nonzero with one line per
violation (capped) otherwise.

Usage: tools/validate_trace.py TRACE.json [--require-multi-lane]

--require-multi-lane additionally asserts that at least one trace spans more
than one virtual lane (pid 2 tids), i.e. the merged timeline really shows a
coordinator fanning out to nodes — used by the ctest over a generated trace.
"""

import argparse
import json
import sys

MAX_REPORTED = 20
# ts/dur are ns/1e3 doubles serialized at 15 significant digits; allow a
# sub-nanosecond slop for the decimal round trip.
EPS_US = 1e-3


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument("--require-multi-lane", action="store_true",
                        help="fail unless some trace spans >1 virtual lane")
    opts = parser.parse_args()

    try:
        with open(opts.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {opts.trace}: {e}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("FAIL: no traceEvents array")
        return 1

    errors = []

    def err(msg):
        if len(errors) < MAX_REPORTED:
            errors.append(msg)
        else:
            errors.append(None)  # counted, not printed

    # --- metadata: process/thread name registries ---
    proc_names = {}
    thread_names = {}
    for e in events:
        if e.get("ph") != "M":
            continue
        if e.get("name") == "process_name":
            proc_names[e["pid"]] = e["args"]["name"]
        elif e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]

    # --- collect spans ---
    spans = {}  # span_id -> event
    complete = [e for e in events if e.get("ph") == "X"]
    for e in complete:
        for field in ("name", "cat", "pid", "tid", "ts", "dur"):
            if field not in e:
                err(f"event missing required field '{field}': {e}")
        args = e.get("args")
        if not isinstance(args, dict):
            continue  # bare Record() event: no causal identity to check
        sid = args.get("span_id")
        if sid is None:
            continue
        if args.get("trace_id", 0) == 0:
            err(f"span {sid} ('{e.get('name')}') has zero trace_id")
        if sid in spans:
            err(f"duplicate span_id {sid}: '{spans[sid].get('name')}' "
                f"and '{e.get('name')}'")
        else:
            spans[sid] = e
        if e["pid"] not in proc_names:
            err(f"event '{e.get('name')}' uses pid {e['pid']} "
                "with no process_name metadata")
        if (e["pid"], e["tid"]) not in thread_names:
            err(f"event '{e.get('name')}' uses pid/tid "
                f"{e['pid']}/{e['tid']} with no thread_name metadata")

    # --- causal edges: parent exists, same trace, time containment ---
    orphan_edges = 0
    for sid, e in spans.items():
        pid_ = e["args"].get("parent_id", 0)
        if pid_ == 0:
            continue
        parent = spans.get(pid_)
        if parent is None:
            orphan_edges += 1
            err(f"span {sid} ('{e.get('name')}') references missing "
                f"parent {pid_}")
            continue
        if parent["args"].get("trace_id") != e["args"].get("trace_id"):
            err(f"span {sid} ('{e.get('name')}') and parent {pid_} "
                f"('{parent.get('name')}') disagree on trace_id")
        same_lane = (e["pid"], e["tid"]) == (parent["pid"], parent["tid"])
        starts_early = e["ts"] < parent["ts"] - EPS_US
        ends_late = e["ts"] + e["dur"] > parent["ts"] + parent["dur"] + EPS_US
        if starts_early or (same_lane and ends_late):
            err(f"span {sid} ('{e.get('name')}') "
                f"[{e['ts']}, {e['ts'] + e['dur']}] escapes "
                f"{'same-lane ' if same_lane else ''}parent "
                f"{pid_} ('{parent.get('name')}') "
                f"[{parent['ts']}, {parent['ts'] + parent['dur']}]")

    # --- per-trace lane fan-out (virtual pid 2) ---
    lanes_by_trace = {}
    for e in spans.values():
        if e["pid"] != 2:
            continue
        lanes_by_trace.setdefault(e["args"]["trace_id"], set()).add(e["tid"])
    multi_lane = sum(1 for lanes in lanes_by_trace.values() if len(lanes) > 1)
    if opts.require_multi_lane and multi_lane == 0:
        err("no trace spans more than one virtual lane "
            "(expected coordinator + node lanes sharing a trace_id)")

    printed = [m for m in errors if m is not None]
    for m in printed:
        print(f"FAIL: {m}")
    if len(errors) > len(printed):
        print(f"FAIL: ... and {len(errors) - len(printed)} more violations")
    if errors:
        return 1

    print(f"OK: {len(complete)} events, {len(spans)} spans, "
          f"{len(lanes_by_trace)} virtual traces ({multi_lane} multi-lane), "
          f"{len(proc_names)} processes, {len(thread_names)} threads")
    return 0


if __name__ == "__main__":
    sys.exit(main())
